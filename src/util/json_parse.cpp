#include "util/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace popbean {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t offset) {
  throw JsonParseError(what + " at offset " + std::to_string(offset), offset);
}

}  // namespace

class JsonParser {
 public:
  JsonParser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue run() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value", pos_);
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting too deep", pos_);
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.text_ = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = true;
          return v;
        }
        fail("invalid literal", pos_);
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = false;
          return v;
        }
        fail("invalid literal", pos_);
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail("invalid literal", pos_);
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      const std::size_t key_pos = pos_;
      std::string key = parse_string();
      if (v.members_.contains(key)) fail("duplicate key \"" + key + '"', key_pos);
      skip_ws();
      expect(':');
      v.members_.emplace(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("raw control character in string", pos_);
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // consume the backslash
      const char escape = peek();
      ++pos_;
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape", pos_ - 1);
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape", pos_);
    }
    pos_ += 4;
    return code;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate: pair required
      if (!consume_literal("\\u")) fail("unpaired surrogate", pos_);
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate", pos_);
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate", pos_);
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ - before;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) fail("invalid number", start);
    // No leading zeros (JSON): "0" alone is fine, "01" is not.
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("leading zero in number", start);
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after '.'", pos_);
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("digits required in exponent", pos_);
    }
    const std::string_view lexeme = text_.substr(start, pos_ - start);
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.text_ = std::string(lexeme);
    const auto result = std::from_chars(lexeme.data(),
                                        lexeme.data() + lexeme.size(),
                                        v.number_);
    if (result.ec != std::errc() || result.ptr != lexeme.data() + lexeme.size()) {
      fail("number out of range", start);
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
};

JsonValue JsonValue::parse(std::string_view text, std::size_t max_depth) {
  return JsonParser(text, max_depth).run();
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw JsonParseError("value is not a bool", 0);
  return bool_;
}

double JsonValue::as_double() const {
  if (!is_number()) throw JsonParseError("value is not a number", 0);
  return number_;
}

std::int64_t JsonValue::as_i64() const {
  if (!is_number()) throw JsonParseError("value is not a number", 0);
  std::int64_t out = 0;
  const auto result =
      std::from_chars(text_.data(), text_.data() + text_.size(), out);
  if (result.ec != std::errc() || result.ptr != text_.data() + text_.size()) {
    throw JsonParseError("number is not a 64-bit integer: " + text_, 0);
  }
  return out;
}

std::uint64_t JsonValue::as_u64() const {
  if (!is_number()) throw JsonParseError("value is not a number", 0);
  std::uint64_t out = 0;
  const auto result =
      std::from_chars(text_.data(), text_.data() + text_.size(), out);
  if (result.ec != std::errc() || result.ptr != text_.data() + text_.size()) {
    throw JsonParseError("number is not an unsigned 64-bit integer: " + text_,
                         0);
  }
  return out;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw JsonParseError("value is not a string", 0);
  return text_;
}

std::size_t JsonValue::size() const {
  if (!is_array()) throw JsonParseError("value is not an array", 0);
  return items_.size();
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (!is_array()) throw JsonParseError("value is not an array", 0);
  if (index >= items_.size()) throw JsonParseError("array index out of range", 0);
  return items_[index];
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) throw JsonParseError("value is not an object", 0);
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

const std::map<std::string, JsonValue, std::less<>>& JsonValue::members() const {
  if (!is_object()) throw JsonParseError("value is not an object", 0);
  return members_;
}

}  // namespace popbean
