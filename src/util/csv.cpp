#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace popbean {

std::string csv_escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  POPBEAN_CHECK(arity_ > 0);
  write_cells(header);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  POPBEAN_CHECK(cells.size() == arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  write_cells(cells);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
}

}  // namespace popbean
