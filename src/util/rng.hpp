// Deterministic, platform-independent pseudo-random number generation.
//
// All stochastic behaviour in popbean flows through Xoshiro256ss seeded via
// splitmix64, so a run is fully reproducible from a (seed, stream) pair.
// We deliberately avoid <random> distributions: their output is
// implementation-defined, which would make recorded experiment results
// non-portable across standard libraries.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace popbean {

// SplitMix64 (Steele, Lea, Flood 2014). Used for seeding and for hashing
// (seed, stream) pairs into independent generator states.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Mixes a base seed and a stream index into a single 64-bit seed, so that
// replicate r of experiment e gets an independent, reproducible stream.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t s = seed;
  std::uint64_t a = splitmix64(s);
  s ^= stream * 0xda942042e4dd58b5ULL;
  std::uint64_t b = splitmix64(s);
  return a ^ (b + 0x9e3779b97f4a7c15ULL);
}

// xoshiro256** 1.0 (Blackman & Vigna 2018). Fast, 256-bit state, passes
// BigCrush; the authors' recommended all-purpose generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  Xoshiro256ss(std::uint64_t seed, std::uint64_t stream) noexcept
      : Xoshiro256ss(mix_seed(seed, stream)) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift rejection
  // method — unbiased and branch-light.
  std::uint64_t below(std::uint64_t bound) noexcept {
    POPBEAN_DCHECK(bound > 0);
    // 128-bit multiply; GCC/Clang extension, hence the __extension__ marker.
    __extension__ using uint128 = unsigned __int128;
    uint128 product = static_cast<uint128>((*this)()) * bound;
    auto low = static_cast<std::uint64_t>(product);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        product = static_cast<uint128>((*this)()) * bound;
        low = static_cast<std::uint64_t>(product);
      }
    }
    return static_cast<std::uint64_t>(product >> 64);
  }

  // Uniform double in [0, 1) with 53 random bits.
  double unit() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in (0, 1] — safe as a log() argument.
  double unit_positive() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  // Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    POPBEAN_DCHECK(rate > 0.0);
    return -std::log(unit_positive()) / rate;
  }

  // Number of failures before the first success for success probability p,
  // i.e. the Geometric(p) distribution supported on {0, 1, 2, ...}.
  // Used by the skip engine to count null interactions between reactions.
  std::uint64_t geometric_failures(double p) noexcept {
    POPBEAN_DCHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    const double draws = std::floor(std::log(unit_positive()) / std::log1p(-p));
    // Guard against pathological p ~ 0 producing values beyond uint64 range.
    constexpr double kMax = 9.2e18;
    return draws >= kMax ? static_cast<std::uint64_t>(kMax)
                         : static_cast<std::uint64_t>(draws);
  }

  // True with probability p.
  bool bernoulli(double p) noexcept { return unit() < p; }

  // Snapshot access to the raw 256-bit state (util/binary_io + recovery
  // snapshots). A generator restored via set_state_words continues the exact
  // sequence the saved one would have produced.
  std::array<std::uint64_t, 4> state_words() const noexcept { return state_; }

  void set_state_words(const std::array<std::uint64_t, 4>& words) {
    POPBEAN_CHECK_MSG(words[0] != 0 || words[1] != 0 || words[2] != 0 ||
                          words[3] != 0,
                      "xoshiro256** state must not be all-zero");
    state_ = words;
  }

  // Derives an independent child generator from the current state and a
  // stream id WITHOUT advancing this generator. Deterministic: the same
  // (state, stream_id) pair always yields the same child, distinct stream
  // ids yield decorrelated streams (the state words are folded through
  // splitmix64 before mixing in the id). This is how composed components
  // (simulation engine vs fault model vs scheduler) obtain private streams
  // from one root: a component drawing from its split — or not existing at
  // all — can never perturb a sibling's sequence.
  Xoshiro256ss split(std::uint64_t stream_id) const noexcept {
    std::uint64_t s = state_[0];
    std::uint64_t folded = splitmix64(s);
    s ^= rotl(state_[1], 13);
    folded ^= splitmix64(s);
    s ^= rotl(state_[2], 29);
    folded ^= splitmix64(s);
    s ^= rotl(state_[3], 43);
    folded ^= splitmix64(s);
    return Xoshiro256ss(mix_seed(folded, stream_id));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace popbean
