// Divergence capture for replicated voting (serve/replicate.hpp,
// DESIGN.md §12): when a voted job's minority replica ran under chaos
// corruption, freeze that exact replica run into a §7 capture pair so
// popbean-replay can reproduce the outvoted execution bit-exactly.
//
// This works because the service's corrupt replica path and
// record_perturbed_run construct the identical stack — Xoshiro256ss(seed,
// stream), CountEngine over the same initial counts, TransientCorruption +
// UniformSchedule consuming the same rng — and the interruptible runner is
// bit-identical to run_to_convergence when never interrupted. The capture
// is a *re-execution* with a recorder attached, done on the cold divergence
// path; it costs one extra run of the minority replica.
//
// Capture is best-effort: an oversized state space, an unwritable
// directory, or any recording failure yields std::nullopt and the job is
// served normally — divergence telemetry still carries the (seed, stream)
// pair, so the run stays reproducible by hand.
#pragma once

#include <cstdint>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>

#include "faults/fault_model.hpp"
#include "faults/schedule_model.hpp"
#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "recovery/event_log.hpp"
#include "recovery/record.hpp"
#include "verify/linear_invariant.hpp"

namespace popbean::recovery {

// Recording embeds the protocol as .pbp text (O(s²) δ enumeration); a
// programmatic zoo member with a huge closed universe is not worth that.
inline constexpr std::size_t kMaxCaptureStates = 4096;

struct DivergenceCapture {
  std::string header_path;
  std::string log_path;
};

// All-zero conserved quantity for families without a registered invariant:
// trivially preserved, so the capture's monitor never fires and the replay
// contract reduces to pure trajectory equality.
inline verify::LinearInvariant trivial_invariant(std::size_t num_states) {
  return verify::LinearInvariant(
      "trivial", std::vector<std::int64_t>(num_states, 0));
}

// `tag` becomes the file stem inside `dir` (sanitized; zoo family names
// contain ':').
template <ProtocolLike P>
std::optional<DivergenceCapture> record_divergent_replica(
    const P& protocol, const verify::LinearInvariant& invariant,
    const Counts& initial, double corrupt_rate, const RecordSpec& spec,
    const std::string& dir, const std::string& tag) {
  if (protocol.num_states() > kMaxCaptureStates) return std::nullopt;
  try {
    std::filesystem::create_directories(dir);
    std::string stem = tag;
    for (char& c : stem) {
      const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
      if (!safe) c = '_';
    }
    const RecordedRun recorded = record_perturbed_run(
        protocol, invariant, initial, faults::TransientCorruption(corrupt_rate),
        faults::UniformSchedule{}, spec);
    DivergenceCapture capture;
    capture.header_path = dir + "/" + stem + ".header.pbsn";
    capture.log_path = dir + "/" + stem + ".log.pbsn";
    save_capture_files(capture.header_path, capture.log_path, recorded.header,
                       recorded.log);
    return capture;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace popbean::recovery
