// Versioned, checksummed snapshot files (DESIGN.md §7).
//
// Every recovery artifact — engine snapshots, replay captures, event logs —
// travels in the same container:
//
//   "PBSN" | version u32 | kind str | payload str | fnv1a64(kind ⊕ payload)
//
// The `kind` string tags what the payload is ("engine/count",
// "replay/initial", …) so a snapshot restored into the wrong engine type
// fails loudly instead of deserializing garbage. Files are written via
// write_file_atomic (stage + rename), so a crash mid-save never clobbers the
// previous snapshot, and the trailing checksum rejects truncation and bit
// rot on load.
//
// Engine snapshots pair the engine's own mutable state with the *driver* rng
// (the generator the caller passes to step()): restoring both is what makes
// the resumed run bit-identical to the uninterrupted one. Construction
// inputs (protocol, initial counts, graph, fault/schedule models) are not
// serialized — restore into an engine constructed with identical arguments.
// Since v2 the payload leads with the protocol's identity string
// (population/protocol_identity.hpp: a registry name and/or a structural
// δ-table fingerprint), so restoring a snapshot into an engine running a
// *different* protocol — same engine type, same state count, different
// rules — is refused instead of silently resuming a corrupted run.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "population/protocol_identity.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean::recovery {

inline constexpr std::string_view kSnapshotMagic = "PBSN";
// v2: engine payloads gained the leading protocol-identity string.
inline constexpr std::uint32_t kSnapshotVersion = 2;

// Sentinel accepted on restore regardless of the live protocol — an escape
// hatch for payloads produced outside the save path (hand-written fixtures).
inline constexpr std::string_view kUnknownProtocolIdentity = "unknown";

// Corrupt, truncated, or mismatched snapshot input. Deliberately a distinct
// type: callers (the resume path, popbean-replay) treat a bad file as "start
// over / refuse", never as a crash.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

// An engine the snapshot layer can round-trip: a self-describing kind tag
// plus binary state hooks.
template <typename E>
concept SnapshotableEngine =
    requires(const E& engine, E& mutable_engine, BinaryWriter& out,
             BinaryReader& in) {
      { E::kSnapshotKind } -> std::convertible_to<std::string_view>;
      engine.save_state(out);
      mutable_engine.load_state(in);
      engine.protocol();  // identity-checked on restore
    };

inline std::string pack_blob(std::string_view kind, std::string_view payload) {
  BinaryWriter out;
  for (const char c : kSnapshotMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u32(kSnapshotVersion);
  out.str(kind);
  out.str(payload);
  out.u64(fnv1a64(payload, fnv1a64(kind)));
  return out.take();
}

struct Blob {
  std::string kind;
  std::string payload;
};

inline Blob unpack_blob(std::string_view bytes, std::string_view source) {
  const auto fail = [&](const std::string& what) -> void {
    throw SnapshotError("snapshot " + std::string(source) + ": " + what);
  };
  try {
    BinaryReader in(bytes);
    std::array<char, 4> magic;
    for (char& c : magic) c = static_cast<char>(in.u8());
    if (std::string_view(magic.data(), magic.size()) != kSnapshotMagic) {
      fail("bad magic (not a popbean snapshot file)");
    }
    const std::uint32_t version = in.u32();
    if (version != kSnapshotVersion) {
      fail("unsupported version " + std::to_string(version) + " (this build "
           "reads version " + std::to_string(kSnapshotVersion) + ")");
    }
    Blob blob;
    blob.kind = in.str();
    blob.payload = in.str();
    const std::uint64_t declared = in.u64();
    const std::uint64_t actual = fnv1a64(blob.payload, fnv1a64(blob.kind));
    if (declared != actual) {
      fail("checksum mismatch (file is corrupt)");
    }
    if (!in.at_end()) fail("trailing bytes after checksum");
    return blob;
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    fail(e.what());  // BinaryReader truncation → SnapshotError
  }
  POPBEAN_CHECK_MSG(false, "unreachable");
  return {};
}

inline void save_blob_file(const std::string& path, std::string_view kind,
                           std::string_view payload) {
  write_file_atomic(path, pack_blob(kind, payload));
}

// Loads and validates a blob, additionally checking the kind tag.
inline std::string load_payload_file(const std::string& path,
                                     std::string_view expected_kind) {
  Blob blob = unpack_blob(read_file_bytes(path), path);
  if (blob.kind != expected_kind) {
    throw SnapshotError("snapshot " + path + ": kind is '" + blob.kind +
                        "', expected '" + std::string(expected_kind) + "'");
  }
  return std::move(blob.payload);
}

inline void write_rng(BinaryWriter& out, const Xoshiro256ss& rng) {
  for (const std::uint64_t w : rng.state_words()) out.u64(w);
}

inline void read_rng(BinaryReader& in, Xoshiro256ss& rng) {
  std::array<std::uint64_t, 4> words;
  for (std::uint64_t& w : words) w = in.u64();
  rng.set_state_words(words);
}

// Serializes engine + driver rng into a blob payload (no file). The payload
// leads with the engine's protocol identity so restore can refuse a
// protocol/snapshot mismatch.
template <SnapshotableEngine E>
std::string snapshot_engine_bytes(const E& engine, const Xoshiro256ss& driver) {
  BinaryWriter out;
  out.str(protocol_identity(engine.protocol()));
  write_rng(out, driver);
  engine.save_state(out);
  return out.take();
}

// Restores engine + driver rng from a payload produced by
// snapshot_engine_bytes on an engine constructed with identical arguments.
// Throws SnapshotError if the embedded protocol identity does not match the
// live engine's (kUnknownProtocolIdentity is always accepted).
template <SnapshotableEngine E>
void restore_engine_bytes(std::string_view payload, E& engine,
                          Xoshiro256ss& driver) {
  try {
    BinaryReader in(payload);
    const std::string saved = in.str();
    const std::string live = protocol_identity(engine.protocol());
    if (saved != live && saved != kUnknownProtocolIdentity) {
      throw SnapshotError("protocol identity mismatch: snapshot was taken "
                          "with \"" + saved + "\" but the engine is running "
                          "\"" + live + "\"");
    }
    read_rng(in, driver);
    engine.load_state(in);
    if (!in.at_end()) {
      throw SnapshotError("snapshot payload has trailing bytes");
    }
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("engine snapshot: ") + e.what());
  }
}

// File-level convenience wrappers with atomic write-rename.
template <SnapshotableEngine E>
void save_engine_snapshot(const std::string& path, const E& engine,
                          const Xoshiro256ss& driver) {
  save_blob_file(path, E::kSnapshotKind, snapshot_engine_bytes(engine, driver));
}

template <SnapshotableEngine E>
void restore_engine_snapshot(const std::string& path, E& engine,
                             Xoshiro256ss& driver) {
  const std::string payload = load_payload_file(path, E::kSnapshotKind);
  restore_engine_bytes(payload, engine, driver);
}

}  // namespace popbean::recovery
