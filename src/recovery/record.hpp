// Recording a perturbed run into a replay capture (DESIGN.md §7).
//
// The recorder is a faults::StepObserver: the PerturbedEngine reports every
// applied fault event and every scheduled interaction while the run
// executes normally, so recording costs one append per step and perturbs
// nothing (the observer makes no random draws and never touches the
// engine). One wrinkle: one-shot fault models (StuckAt) fire inside the
// adapter's *constructor*, before any observer can attach — those events
// are backfilled from the adapter's FaultLog, which has already recorded
// them in order.
//
// record_perturbed_run re-executes one deterministic cell of a fault sweep
// (same seed, same stream ⇒ same trajectory) with a recorder attached and
// returns the two capture artifacts: a self-contained header (protocol
// embedded as .pbp text, invariant weights, instance parameters) and the
// event log closed by the observed outcome. popbean-replay consumes these
// with no other inputs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_log.hpp"
#include "faults/invariant_monitor.hpp"
#include "faults/perturbed_engine.hpp"
#include "population/configuration.hpp"
#include "population/count_engine.hpp"
#include "population/protocol.hpp"
#include "population/run.hpp"
#include "protocols/tabulated_io.hpp"
#include "recovery/event_log.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "verify/linear_invariant.hpp"

namespace popbean::recovery {

class ReplayRecorder : public faults::StepObserver {
 public:
  void on_fault(const faults::FaultEvent& event) override {
    events_.push_back({replay_kind(event.kind), event.from, event.to, 0});
  }

  void on_interaction(State initiator, State responder, bool initiator_stuck,
                      bool responder_stuck) override {
    std::uint8_t flags = 0;
    if (initiator_stuck) flags |= kInitiatorStuck;
    if (responder_stuck) flags |= kResponderStuck;
    events_.push_back(
        {ReplayEventKind::kInteraction, initiator, responder, flags});
  }

  const std::vector<ReplayEvent>& events() const noexcept { return events_; }
  std::vector<ReplayEvent> take() { return std::move(events_); }

 private:
  std::vector<ReplayEvent> events_;
};

struct RecordedRun {
  CaptureHeader header;
  CaptureLog log;
};

// Instance parameters of the cell being recorded; seed/stream must be the
// exact values the original run used for its perturbation root.
struct RecordSpec {
  std::string protocol_name = "recorded";
  std::uint64_t seed = 0;
  std::uint64_t stream = 0;
  std::uint64_t max_interactions = 0;
  double rate = 0.0;     // descriptive metadata (sweep rate of this cell)
  double epsilon = 0.0;  // descriptive metadata
};

// Deterministically re-runs one perturbed cell with a recorder attached.
// The fault/schedule models must be freshly-constructed duplicates of the
// originals (models are consumed by the adapter).
template <ProtocolLike P, faults::FaultModelLike F,
          faults::ScheduleModelLike S>
RecordedRun record_perturbed_run(const P& protocol,
                                 const verify::LinearInvariant& invariant,
                                 const Counts& initial, F fault_model,
                                 S schedule_model, const RecordSpec& spec) {
  Xoshiro256ss rng(spec.seed, spec.stream);
  auto engine =
      faults::make_perturbed(CountEngine<P>(protocol, initial),
                             std::move(fault_model), std::move(schedule_model),
                             rng);
  POPBEAN_CHECK_MSG(!engine.passthrough(),
                    "recording requires an active fault model or a "
                    "non-delegating schedule (a passthrough run has no "
                    "perturbed events to capture)");

  faults::InvariantMonitor monitor(invariant, initial);
  engine.attach_monitor(&monitor);

  ReplayRecorder recorder;
  // Backfill the constructor's one-shot fault batch (see header comment).
  POPBEAN_CHECK_MSG(engine.fault_log().dropped() == 0,
                    "init fault batch overflowed the fault log; cannot "
                    "record a complete event history");
  for (const faults::FaultEvent& event : engine.fault_log().events()) {
    recorder.on_fault(event);
  }
  engine.attach_observer(&recorder);

  const RunResult result = run_to_convergence(engine, rng,
                                              spec.max_interactions);

  RecordedRun recorded;
  // The .pbp invariant name is a single token; the capture header keeps the
  // human-readable one.
  std::string invariant_token = invariant.name();
  for (char& c : invariant_token) {
    if (c == ' ' || c == '\t') c = '_';
  }
  recorded.header.protocol_text = serialize_protocol(
      protocol, spec.protocol_name,
      {{invariant_token,
        [&] {
          std::vector<std::int64_t> weights(invariant.num_states());
          for (State q = 0; q < weights.size(); ++q) {
            weights[q] = invariant.weight(q);
          }
          return weights;
        }()}});
  recorded.header.invariant_name = invariant.name();
  recorded.header.invariant_weights.resize(invariant.num_states());
  for (State q = 0; q < recorded.header.invariant_weights.size(); ++q) {
    recorded.header.invariant_weights[q] = invariant.weight(q);
  }
  recorded.header.n = population_size(initial);
  recorded.header.seed = spec.seed;
  recorded.header.stream = spec.stream;
  recorded.header.max_interactions = spec.max_interactions;
  recorded.header.rate = spec.rate;
  recorded.header.epsilon = spec.epsilon;
  recorded.header.initial = initial;

  recorded.log.events = recorder.take();
  recorded.log.outcome.status = result.status;
  recorded.log.outcome.decided = result.decided;
  recorded.log.outcome.interactions = result.interactions;
  recorded.log.outcome.violated = monitor.violated();
  recorded.log.outcome.violation_step =
      monitor.first_violation_step().value_or(0);
  recorded.log.outcome.final_counts = engine.counts();
  return recorded;
}

}  // namespace popbean::recovery
