// Deterministic replay of a recorded perturbed run (DESIGN.md §7).
//
// Replay is pure data application: no engine, no generator. The replayer
// maintains the same counts-level bookkeeping as the PerturbedEngine
// (configuration, crashed and stubborn sub-populations, output tallies, an
// incremental invariant monitor) and applies the recorded events in order —
// fault events exactly as the adapter's apply_events does, interaction
// events by applying δ to the recorded state pair with the recorded
// stubborn-suppression flags. Replaying an unmodified log therefore
// reconstructs the original trajectory bit-exactly: same first-violation
// step, same decision, same final configuration.
//
// Because replay never draws randomness, the event list can be *edited* and
// re-applied — the delta-debugging shrinker (shrink.hpp) relies on this to
// drop fault events and ask "does the violation still happen?". An edited
// schedule can become infeasible (an event targets a state with no agent);
// the replayer reports that as a non-reproducing outcome instead of failing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/invariant_monitor.hpp"
#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "population/run.hpp"
#include "recovery/event_log.hpp"
#include "util/check.hpp"
#include "verify/linear_invariant.hpp"

namespace popbean::recovery {

struct ReplayResult {
  bool feasible = true;
  std::size_t infeasible_event = 0;   // index of the first infeasible event
  std::string infeasible_reason;

  RunStatus status = RunStatus::kStepLimit;
  Output decided = 0;                 // meaningful when converged
  std::uint64_t interactions = 0;
  bool violated = false;
  std::uint64_t violation_step = 0;
  Counts final_counts;

  CaptureOutcome outcome() const {
    return {status, decided, interactions, violated, violation_step,
            final_counts};
  }

  // Bit-exact agreement with a recorded outcome.
  bool matches(const CaptureOutcome& recorded) const {
    return feasible && outcome() == recorded;
  }
};

template <ProtocolLike P>
ReplayResult replay_events(const P& protocol,
                           const verify::LinearInvariant& invariant,
                           const Counts& initial,
                           const std::vector<ReplayEvent>& events,
                           std::uint64_t start_step = 0) {
  POPBEAN_CHECK(initial.size() == protocol.num_states());
  POPBEAN_CHECK(invariant.num_states() == protocol.num_states());
  const std::size_t s = protocol.num_states();
  const std::uint64_t n = population_size(initial);

  Counts counts = initial;
  Counts frozen(s, 0);
  Counts stuck(s, 0);
  std::uint64_t frozen_count = 0;
  std::uint64_t steps = start_step;
  std::uint64_t out_count[2] = {0, 0};
  for (State q = 0; q < s; ++q) {
    out_count[protocol.output(q) == 0 ? 0 : 1] += counts[q];
  }
  faults::InvariantMonitor monitor(invariant, initial);

  ReplayResult result;
  const auto mobile = [&](State q) {
    return counts[q] - frozen[q] - stuck[q];
  };
  const auto move = [&](State from, State to) {
    --counts[from];
    ++counts[to];
    monitor.apply_move(from, to);
    const Output before = protocol.output(from);
    const Output after = protocol.output(to);
    if (before != after) {
      --out_count[before == 0 ? 0 : 1];
      ++out_count[after == 0 ? 0 : 1];
    }
  };
  const auto infeasible = [&](std::size_t index, const std::string& why) {
    result.feasible = false;
    result.infeasible_event = index;
    result.infeasible_reason = why;
  };

  // The adapter assesses fault batches once per batch, not per event (Φ may
  // legitimately drift and return within one batch). Batch boundaries are
  // not encoded in the log, but a maximal run of consecutive fault events is
  // applied at a single interaction count, so deferring the check to the end
  // of the run reproduces the adapter's assessment.
  bool fault_check_pending = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ReplayEvent& event = events[i];
    const bool has_target = event.kind == ReplayEventKind::kInteraction ||
                            event.kind == ReplayEventKind::kCorrupt ||
                            event.kind == ReplayEventKind::kSignFlip;
    if (event.a >= s || (has_target && event.b >= s)) {
      infeasible(i, "event state out of range");
      break;
    }
    if (event.is_fault()) fault_check_pending = true;
    switch (event.kind) {
      case ReplayEventKind::kCrash:
        if (mobile(event.a) == 0) {
          infeasible(i, "crash targets a state with no mobile agent");
          break;
        }
        ++frozen[event.a];
        ++frozen_count;
        break;
      case ReplayEventKind::kRecover:
        if (frozen[event.a] == 0) {
          infeasible(i, "recovery targets a state with no crashed agent");
          break;
        }
        --frozen[event.a];
        --frozen_count;
        break;
      case ReplayEventKind::kCorrupt:
      case ReplayEventKind::kSignFlip:
        if (mobile(event.a) == 0) {
          infeasible(i, "corruption targets a state with no mobile agent");
          break;
        }
        if (event.a != event.b) move(event.a, event.b);
        break;
      case ReplayEventKind::kStick:
        if (mobile(event.a) == 0) {
          infeasible(i, "stick targets a state with no mobile agent");
          break;
        }
        ++stuck[event.a];
        break;
      case ReplayEventKind::kInteraction: {
        if (fault_check_pending) {
          monitor.check(steps);
          fault_check_pending = false;
        }
        const State a = event.a;
        const State b = event.b;
        const bool a_stuck = (event.flags & kInitiatorStuck) != 0;
        const bool b_stuck = (event.flags & kResponderStuck) != 0;
        // Seat the two agents the recorded schedule picked: each seat needs
        // an agent of the right state in the right sub-population, with the
        // initiator's seat excluded when both share a state.
        const std::uint64_t need_a = a_stuck ? stuck[a] : mobile(a);
        if (need_a == 0) {
          infeasible(i, "interaction initiator seat unavailable");
          break;
        }
        const std::uint64_t same = a == b ? 1 : 0;
        const std::uint64_t excl_stuck = (a == b && a_stuck) ? 1 : 0;
        const std::uint64_t pool_b =
            b_stuck ? stuck[b] - excl_stuck
                    : mobile(b) - (same - excl_stuck);
        if ((b_stuck && stuck[b] < excl_stuck + 1) ||
            (!b_stuck && mobile(b) < (same - excl_stuck) + 1) || pool_b == 0) {
          infeasible(i, "interaction responder seat unavailable");
          break;
        }
        const Transition t = protocol.apply(a, b);
        if (!a_stuck && a != t.initiator) move(a, t.initiator);
        if (!b_stuck && b != t.responder) {
          // The seated responder still holds state b: the initiator's move
          // moved a different agent. counts[b] must therefore be positive.
          if (counts[b] == 0) {
            infeasible(i, "interaction responder vanished mid-step");
            break;
          }
          move(b, t.responder);
        }
        monitor.check(steps);
        ++steps;
        break;
      }
    }
    if (!result.feasible) break;
  }
  if (result.feasible && fault_check_pending) monitor.check(steps);

  result.interactions = steps;
  result.violated = monitor.violated();
  result.violation_step = monitor.first_violation_step().value_or(0);
  result.final_counts = counts;
  if (out_count[0] == 0 || out_count[1] == 0) {
    result.status = RunStatus::kConverged;
    result.decided = out_count[1] >= out_count[0] ? 1 : 0;
  } else if (n - frozen_count < 2) {
    result.status = RunStatus::kAbsorbing;
  } else {
    result.status = RunStatus::kStepLimit;
  }
  return result;
}

}  // namespace popbean::recovery
