// Delta-debugging minimization of recorded fault schedules (DESIGN.md §7).
//
// Given a capture whose replay reproduces a failure — an Invariant 4.3
// violation, a wrong decision, or both — the shrinker searches for a
// 1-minimal subset of the *fault* events that still reproduces it.
// Interaction events are never removed: they are the protocol's own
// dynamics, and the question a minimized capture answers is "which
// injected faults were actually responsible?".
//
// The search is Zeller–Hildebrandt ddmin over the fault-event index set.
// Each probe re-runs the deterministic replayer on the edited schedule;
// probes whose edited schedule is infeasible (a removed fault was load-
// bearing for a later event's target) simply fail to reproduce and are
// rejected — no special casing. ddmin guarantees the result is 1-minimal:
// removing any single remaining fault event stops reproducing the failure.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "recovery/event_log.hpp"
#include "recovery/replay.hpp"
#include "util/check.hpp"
#include "verify/linear_invariant.hpp"

namespace popbean::recovery {

// What the minimized schedule must still reproduce. Violation and wrong
// decision can be required together (both must reproduce).
struct ShrinkTarget {
  bool require_violation = true;
  bool require_wrong_decision = false;
  Output correct_output = 0;  // consulted when require_wrong_decision

  bool reproduced_by(const ReplayResult& result) const {
    if (!result.feasible) return false;
    if (require_violation && !result.violated) return false;
    if (require_wrong_decision &&
        !(result.status == RunStatus::kConverged &&
          result.decided != correct_output)) {
      return false;
    }
    return true;
  }
};

struct ShrinkStats {
  std::size_t original_faults = 0;
  std::size_t minimized_faults = 0;
  std::size_t probes = 0;  // replay executions performed
};

template <ProtocolLike P>
class ScheduleShrinker {
 public:
  ScheduleShrinker(const P& protocol, const verify::LinearInvariant& invariant,
                   Counts initial, std::vector<ReplayEvent> events,
                   ShrinkTarget target)
      : protocol_(protocol),
        invariant_(invariant),
        initial_(std::move(initial)),
        events_(std::move(events)),
        target_(target) {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].is_fault()) fault_positions_.push_back(i);
    }
  }

  // Whether the full, unedited schedule reproduces the target failure —
  // callers should verify this before paying for a minimization.
  bool baseline_reproduces() {
    return probe(fault_positions_);
  }

  // ddmin over the fault positions. Returns the minimized event list (all
  // interaction events, surviving fault events, original order).
  std::vector<ReplayEvent> minimize() {
    POPBEAN_CHECK_MSG(baseline_reproduces(),
                      "cannot shrink: the full schedule does not reproduce "
                      "the target failure");
    stats_.original_faults = fault_positions_.size();

    std::vector<std::size_t> current = fault_positions_;
    std::size_t granularity = 2;
    while (current.size() >= 2) {
      const std::vector<std::vector<std::size_t>> chunks =
          split(current, granularity);
      bool reduced = false;

      // Phase 1: reduce to a subset (one chunk alone reproduces).
      for (const std::vector<std::size_t>& chunk : chunks) {
        if (chunk.size() == current.size()) continue;
        if (probe(chunk)) {
          current = chunk;
          granularity = 2;
          reduced = true;
          break;
        }
      }
      if (reduced) continue;

      // Phase 2: reduce to a complement (drop one chunk).
      if (granularity > 2 || chunks.size() > 2) {
        for (const std::vector<std::size_t>& chunk : chunks) {
          std::vector<std::size_t> complement = subtract(current, chunk);
          if (complement.size() == current.size() || complement.empty()) {
            continue;
          }
          if (probe(complement)) {
            current = std::move(complement);
            granularity = std::max<std::size_t>(granularity - 1, 2);
            reduced = true;
            break;
          }
        }
      }
      if (reduced) continue;

      // Phase 3: refine granularity, or stop at single-event chunks.
      if (granularity >= current.size()) break;
      granularity = std::min(granularity * 2, current.size());
    }

    // A single surviving fault may itself be unnecessary (the failure could
    // be a wrong decision the protocol reaches on its own schedule).
    if (current.size() == 1 && probe({})) current.clear();

    stats_.minimized_faults = current.size();
    return keep_only(current);
  }

  const ShrinkStats& stats() const noexcept { return stats_; }

  // Replays the schedule with only the given fault positions kept.
  ReplayResult replay_subset(const std::vector<std::size_t>& kept_faults) {
    ++stats_.probes;
    return replay_events(protocol_, invariant_, initial_,
                         keep_only(kept_faults));
  }

 private:
  bool probe(const std::vector<std::size_t>& kept_faults) {
    return target_.reproduced_by(replay_subset(kept_faults));
  }

  // Event list containing every interaction event plus the fault events at
  // the given (sorted) original positions.
  std::vector<ReplayEvent> keep_only(
      const std::vector<std::size_t>& kept_faults) const {
    std::vector<ReplayEvent> kept;
    kept.reserve(events_.size());
    std::size_t next = 0;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].is_fault()) {
        if (next < kept_faults.size() && kept_faults[next] == i) {
          kept.push_back(events_[i]);
          ++next;
        }
      } else {
        kept.push_back(events_[i]);
      }
    }
    return kept;
  }

  static std::vector<std::vector<std::size_t>> split(
      const std::vector<std::size_t>& items, std::size_t granularity) {
    const std::size_t n = items.size();
    const std::size_t parts = std::min(granularity, n);
    std::vector<std::vector<std::size_t>> chunks(parts);
    std::size_t begin = 0;
    for (std::size_t c = 0; c < parts; ++c) {
      const std::size_t size = n / parts + (c < n % parts ? 1 : 0);
      chunks[c].assign(items.begin() + static_cast<std::ptrdiff_t>(begin),
                       items.begin() + static_cast<std::ptrdiff_t>(begin + size));
      begin += size;
    }
    return chunks;
  }

  static std::vector<std::size_t> subtract(
      const std::vector<std::size_t>& from,
      const std::vector<std::size_t>& drop) {
    std::vector<std::size_t> kept;
    kept.reserve(from.size());
    std::set_difference(from.begin(), from.end(), drop.begin(), drop.end(),
                        std::back_inserter(kept));
    return kept;
  }

  const P& protocol_;
  const verify::LinearInvariant& invariant_;
  Counts initial_;
  std::vector<ReplayEvent> events_;
  ShrinkTarget target_;
  std::vector<std::size_t> fault_positions_;
  ShrinkStats stats_;
};

// One-call convenience: minimize `events` against `target`. The returned
// list reproduces the failure and is 1-minimal in its fault events.
template <ProtocolLike P>
std::vector<ReplayEvent> shrink_fault_schedule(
    const P& protocol, const verify::LinearInvariant& invariant,
    const Counts& initial, const std::vector<ReplayEvent>& events,
    const ShrinkTarget& target, ShrinkStats* stats = nullptr) {
  ScheduleShrinker<P> shrinker(protocol, invariant, initial, events, target);
  std::vector<ReplayEvent> minimized = shrinker.minimize();
  if (stats != nullptr) *stats = shrinker.stats();
  return minimized;
}

}  // namespace popbean::recovery
