#include "recovery/event_log.hpp"
#include "recovery/record.hpp"
#include "recovery/replay.hpp"
#include "recovery/shrink.hpp"
#include "recovery/snapshot.hpp"

namespace popbean::recovery {

std::string_view to_string(ReplayEventKind kind) noexcept {
  switch (kind) {
    case ReplayEventKind::kInteraction:
      return "interaction";
    case ReplayEventKind::kCrash:
      return "crash";
    case ReplayEventKind::kRecover:
      return "recover";
    case ReplayEventKind::kCorrupt:
      return "corrupt";
    case ReplayEventKind::kSignFlip:
      return "sign_flip";
    case ReplayEventKind::kStick:
      return "stick";
  }
  return "unknown";
}

}  // namespace popbean::recovery
