// Model-checker counterexamples as replayable captures (DESIGN.md §10).
//
// The configuration-space model checker (src/verify/model_check.hpp) proves
// its violations constructively: a shortest interaction schedule from an
// initial split to a configuration inside a wrong-stable or livelock
// terminal component. This adapter packages that schedule in the exact
// record/replay capture format of DESIGN.md §7 — the same
// header + event-log pair popbean-record emits — so `popbean-replay` steps
// through the violating execution bit-exactly with no verifier in the loop.
//
// Bit-exactness is by construction, not by hope: the recorded
// CaptureOutcome is computed by running the schedule through the very
// `replay_events` function popbean-replay uses. A counterexample schedule is
// always feasible (every step is an edge of the reachable configuration
// graph), which POPBEAN_CHECK enforces here rather than trusting the caller.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "protocols/tabulated_io.hpp"
#include "recovery/event_log.hpp"
#include "recovery/replay.hpp"
#include "util/check.hpp"
#include "verify/linear_invariant.hpp"
#include "verify/model_check.hpp"

namespace popbean::recovery {

struct CapturePair {
  CaptureHeader header;
  CaptureLog log;
};

// Builds the capture for one model-checker counterexample. `name` becomes
// the protocol name embedded in the header's .pbp text. The monitored
// invariant is agent count — trivially conserved, so a replay mismatch can
// only mean the schedule itself diverged.
template <ProtocolLike P>
CapturePair make_counterexample_capture(const P& protocol,
                                        const std::string& name,
                                        const verify::Counterexample& cex) {
  const verify::LinearInvariant invariant =
      verify::agent_count_invariant(protocol);

  CapturePair capture;
  capture.header.protocol_text = serialize_protocol(protocol, name);
  capture.header.invariant_name = invariant.name();
  capture.header.invariant_weights.resize(invariant.num_states());
  for (State q = 0; q < capture.header.invariant_weights.size(); ++q) {
    capture.header.invariant_weights[q] = invariant.weight(q);
  }
  capture.header.n = cex.n;
  capture.header.seed = 0;  // no randomness: the schedule is the witness
  capture.header.stream = 0;
  capture.header.max_interactions = cex.schedule.size();
  capture.header.rate = 0.0;
  capture.header.epsilon = 0.0;
  capture.header.initial = cex.initial;

  capture.log.events.reserve(cex.schedule.size());
  for (const auto& [a, b] : cex.schedule) {
    capture.log.events.push_back(
        {ReplayEventKind::kInteraction, a, b, /*flags=*/0});
  }

  const ReplayResult result = replay_events(protocol, invariant, cex.initial,
                                            capture.log.events);
  POPBEAN_CHECK_MSG(result.feasible,
                    "model-checker schedule infeasible under replay");
  POPBEAN_CHECK_MSG(result.final_counts == cex.witness,
                    "model-checker schedule does not reach its witness");
  capture.log.outcome = result.outcome();
  return capture;
}

// Writes `prefix`.header.pbsn and `prefix`.log.pbsn (atomic, validated on
// load); returns the two paths for diagnostics.
inline std::pair<std::string, std::string> save_counterexample(
    const std::string& prefix, const CapturePair& capture) {
  std::pair<std::string, std::string> paths = {prefix + ".header.pbsn",
                                               prefix + ".log.pbsn"};
  save_capture_files(paths.first, paths.second, capture.header, capture.log);
  return paths;
}

}  // namespace popbean::recovery
