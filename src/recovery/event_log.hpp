// Deterministic record/replay event log (DESIGN.md §7).
//
// A recorded perturbed run is two artifacts:
//
//   * the *capture header* ("replay/initial" blob) — a self-contained
//     description of where the run started: the protocol itself (embedded as
//     .pbp text), the monitored invariant's weight vector, the instance
//     parameters, and the initial configuration. popbean-replay needs no
//     flags to interpret a capture;
//
//   * the *event log* ("replay/log" blob) — the step-level decisions of the
//     run in order: every applied fault event and every scheduled
//     interaction (as a state pair plus stubborn-suppression flags), closed
//     by the recorded outcome (decision, interaction count, first-violation
//     step, final configuration) against which a replay is verified
//     bit-exactly.
//
// The log deliberately stores *decisions*, not random draws: replay is pure
// data application (src/recovery/replay.hpp), so a fault schedule can be
// edited — in particular, shrunk by delta debugging — and re-applied without
// any generator in the loop.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_log.hpp"
#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "population/run.hpp"
#include "recovery/snapshot.hpp"
#include "util/binary_io.hpp"

namespace popbean::recovery {

inline constexpr std::string_view kCaptureHeaderKind = "replay/initial";
inline constexpr std::string_view kCaptureLogKind = "replay/log";

enum class ReplayEventKind : std::uint8_t {
  kInteraction = 0,  // scheduled interaction between two agent states
  kCrash = 1,
  kRecover = 2,
  kCorrupt = 3,
  kSignFlip = 4,
  kStick = 5,
};

inline constexpr std::uint8_t kInitiatorStuck = 1;
inline constexpr std::uint8_t kResponderStuck = 2;

std::string_view to_string(ReplayEventKind kind) noexcept;

struct ReplayEvent {
  ReplayEventKind kind = ReplayEventKind::kInteraction;
  // Interaction: (initiator state, responder state). Fault: (from, to).
  State a = 0;
  State b = 0;
  std::uint8_t flags = 0;  // interaction only: stubborn-suppression bits

  bool is_fault() const noexcept {
    return kind != ReplayEventKind::kInteraction;
  }

  friend bool operator==(const ReplayEvent&, const ReplayEvent&) = default;
};

inline ReplayEventKind replay_kind(faults::FaultKind kind) {
  switch (kind) {
    case faults::FaultKind::kCrash: return ReplayEventKind::kCrash;
    case faults::FaultKind::kRecover: return ReplayEventKind::kRecover;
    case faults::FaultKind::kCorrupt: return ReplayEventKind::kCorrupt;
    case faults::FaultKind::kSignFlip: return ReplayEventKind::kSignFlip;
    case faults::FaultKind::kStick: return ReplayEventKind::kStick;
  }
  POPBEAN_CHECK_MSG(false, "unreachable fault kind");
  return ReplayEventKind::kCorrupt;
}

// Where the recorded run started, self-contained.
struct CaptureHeader {
  std::string protocol_text;                  // .pbp serialization
  std::string invariant_name;                 // monitored conservation law
  std::vector<std::int64_t> invariant_weights;
  std::uint64_t n = 0;
  std::uint64_t seed = 0;
  std::uint64_t stream = 0;
  std::uint64_t max_interactions = 0;
  double rate = 0.0;
  double epsilon = 0.0;
  Counts initial;
};

// The recorded run's observed outcome — replay must reproduce this exactly.
struct CaptureOutcome {
  RunStatus status = RunStatus::kStepLimit;
  Output decided = 0;
  std::uint64_t interactions = 0;
  bool violated = false;
  std::uint64_t violation_step = 0;
  Counts final_counts;

  friend bool operator==(const CaptureOutcome&, const CaptureOutcome&) =
      default;
};

struct CaptureLog {
  std::vector<ReplayEvent> events;
  CaptureOutcome outcome;
};

inline std::string serialize_capture_header(const CaptureHeader& header) {
  BinaryWriter out;
  out.str(header.protocol_text);
  out.str(header.invariant_name);
  out.u64(header.invariant_weights.size());
  for (const std::int64_t w : header.invariant_weights) out.i64(w);
  out.u64(header.n);
  out.u64(header.seed);
  out.u64(header.stream);
  out.u64(header.max_interactions);
  out.f64(header.rate);
  out.f64(header.epsilon);
  out.vec_u64(header.initial);
  return out.take();
}

inline CaptureHeader parse_capture_header(std::string_view payload,
                                          std::string_view source) {
  try {
    BinaryReader in(payload);
    CaptureHeader header;
    header.protocol_text = in.str();
    header.invariant_name = in.str();
    const std::uint64_t weights = in.u64();
    header.invariant_weights.reserve(weights);
    for (std::uint64_t i = 0; i < weights; ++i) {
      header.invariant_weights.push_back(in.i64());
    }
    header.n = in.u64();
    header.seed = in.u64();
    header.stream = in.u64();
    header.max_interactions = in.u64();
    header.rate = in.f64();
    header.epsilon = in.f64();
    header.initial = in.vec_u64();
    if (!in.at_end()) {
      throw SnapshotError(std::string(source) +
                          ": trailing bytes in capture header");
    }
    return header;
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    throw SnapshotError(std::string(source) + ": " + e.what());
  }
}

inline void write_outcome(BinaryWriter& out, const CaptureOutcome& outcome) {
  out.u8(static_cast<std::uint8_t>(outcome.status));
  out.i64(outcome.decided);
  out.u64(outcome.interactions);
  out.u8(outcome.violated ? 1 : 0);
  out.u64(outcome.violation_step);
  out.vec_u64(outcome.final_counts);
}

inline CaptureOutcome read_outcome(BinaryReader& in) {
  CaptureOutcome outcome;
  const std::uint8_t status = in.u8();
  POPBEAN_CHECK_MSG(status <= static_cast<std::uint8_t>(RunStatus::kAbsorbing),
                    "capture outcome status out of range");
  outcome.status = static_cast<RunStatus>(status);
  outcome.decided = static_cast<Output>(in.i64());
  outcome.interactions = in.u64();
  outcome.violated = in.u8() != 0;
  outcome.violation_step = in.u64();
  outcome.final_counts = in.vec_u64();
  return outcome;
}

inline std::string serialize_capture_log(const CaptureLog& log) {
  BinaryWriter out;
  out.u64(log.events.size());
  for (const ReplayEvent& event : log.events) {
    out.u8(static_cast<std::uint8_t>(event.kind));
    out.u32(event.a);
    out.u32(event.b);
    out.u8(event.flags);
  }
  write_outcome(out, log.outcome);
  return out.take();
}

inline CaptureLog parse_capture_log(std::string_view payload,
                                    std::string_view source) {
  try {
    BinaryReader in(payload);
    CaptureLog log;
    const std::uint64_t count = in.u64();
    // 10 bytes per event; reject impossible counts before allocating.
    if (count > in.remaining() / 10) {
      throw SnapshotError(std::string(source) +
                          ": event count exceeds log size (truncated?)");
    }
    log.events.resize(count);
    for (ReplayEvent& event : log.events) {
      const std::uint8_t kind = in.u8();
      POPBEAN_CHECK_MSG(
          kind <= static_cast<std::uint8_t>(ReplayEventKind::kStick),
          "replay event kind out of range");
      event.kind = static_cast<ReplayEventKind>(kind);
      event.a = in.u32();
      event.b = in.u32();
      event.flags = in.u8();
    }
    log.outcome = read_outcome(in);
    if (!in.at_end()) {
      throw SnapshotError(std::string(source) +
                          ": trailing bytes in capture log");
    }
    return log;
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    throw SnapshotError(std::string(source) + ": " + e.what());
  }
}

// File-level wrappers (atomic write, validated load).
inline void save_capture_files(const std::string& header_path,
                               const std::string& log_path,
                               const CaptureHeader& header,
                               const CaptureLog& log) {
  save_blob_file(header_path, kCaptureHeaderKind,
                 serialize_capture_header(header));
  save_blob_file(log_path, kCaptureLogKind, serialize_capture_log(log));
}

inline CaptureHeader load_capture_header(const std::string& path) {
  return parse_capture_header(load_payload_file(path, kCaptureHeaderKind),
                              path);
}

inline CaptureLog load_capture_log(const std::string& path) {
  return parse_capture_log(load_payload_file(path, kCaptureLogKind), path);
}

}  // namespace popbean::recovery
