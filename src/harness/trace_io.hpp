// Serialization of recorded traces to CSV.
#pragma once

#include <string>

#include "population/trace.hpp"
#include "util/csv.hpp"

namespace popbean {

// Writes one row per trace point: parallel_time, interactions, then one
// column per observable (named from the recorder).
inline void write_trace_csv(const TraceRecorder& recorder,
                            const std::string& path) {
  std::vector<std::string> header = {"parallel_time", "interactions"};
  for (const Observable& obs : recorder.observables()) {
    header.push_back(obs.name);
  }
  CsvWriter csv(path, std::move(header));
  for (const TracePoint& point : recorder.points()) {
    std::vector<std::string> cells;
    cells.reserve(2 + point.values.size());
    cells.push_back(std::to_string(point.parallel_time));
    cells.push_back(std::to_string(point.interactions));
    for (double v : point.values) cells.push_back(std::to_string(v));
    csv.row(cells);
  }
}

}  // namespace popbean
