// Serialization of recorded traces to CSV, and the strict reader for them.
//
// Traces round-trip: write_trace_csv dumps a TraceRecorder, read_trace_csv
// loads the file back for re-plotting or post-hoc analysis. The reader is
// deliberately unforgiving — a crash mid-write (the motivating case: a
// SIGKILLed bench, see DESIGN.md §7) leaves a truncated final row, and a
// loader that silently dropped or zero-filled it would corrupt downstream
// statistics. Every malformed condition throws std::runtime_error naming
// the file and line: missing/short header, row arity mismatch (the
// truncation signature), non-numeric or trailing-garbage cells, and stream
// I/O errors. Callers that *expect* possible truncation pass
// `tolerate_truncated_tail` to drop a single short final row (and only
// that) while still rejecting corruption anywhere else.
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "population/trace.hpp"
#include "util/csv.hpp"

namespace popbean {

// Writes one row per trace point: parallel_time, interactions, then one
// column per observable (named from the recorder).
inline void write_trace_csv(const TraceRecorder& recorder,
                            const std::string& path) {
  std::vector<std::string> header = {"parallel_time", "interactions"};
  for (const Observable& obs : recorder.observables()) {
    header.push_back(obs.name);
  }
  CsvWriter csv(path, std::move(header));
  for (const TracePoint& point : recorder.points()) {
    std::vector<std::string> cells;
    cells.reserve(2 + point.values.size());
    cells.push_back(std::to_string(point.parallel_time));
    cells.push_back(std::to_string(point.interactions));
    for (double v : point.values) cells.push_back(std::to_string(v));
    csv.row(cells);
  }
}

// A trace loaded back from CSV: the observable names and the sampled rows.
struct LoadedTrace {
  std::vector<std::string> observable_names;
  std::vector<TracePoint> points;
  std::size_t dropped_tail_rows = 0;  // only ever 0 or 1
};

namespace detail {

[[noreturn]] inline void trace_fail(const std::string& path, std::size_t line,
                                    const std::string& what) {
  std::ostringstream os;
  os << path << ", line " << line << ": " << what;
  throw std::runtime_error(os.str());
}

// Splits one CSV line, honoring the quoting csv_escape produces.
inline std::vector<std::string> split_csv_line(const std::string& path,
                                               std::size_t line_number,
                                               const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  if (quoted) trace_fail(path, line_number, "unterminated quoted cell");
  cells.push_back(std::move(cell));
  return cells;
}

inline double trace_cell_f64(const std::string& path, std::size_t line,
                             const std::string& cell, const char* what) {
  std::istringstream in(cell);
  double value = 0.0;
  if (!(in >> value) || !(in >> std::ws).eof()) {
    trace_fail(path, line,
               std::string("bad ") + what + " value '" + cell + "'");
  }
  return value;
}

inline std::uint64_t trace_cell_u64(const std::string& path, std::size_t line,
                                    const std::string& cell, const char* what) {
  std::istringstream in(cell);
  std::uint64_t value = 0;
  if (cell.empty() || cell[0] == '-' || !(in >> value) ||
      !(in >> std::ws).eof()) {
    trace_fail(path, line,
               std::string("bad ") + what + " value '" + cell + "'");
  }
  return value;
}

}  // namespace detail

// Loads a trace CSV written by write_trace_csv. Throws std::runtime_error
// (with path and line number) on any malformed content; see the header
// comment for the contract of `tolerate_truncated_tail`.
inline LoadedTrace read_trace_csv(const std::string& path,
                                  bool tolerate_truncated_tail = false) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot open trace CSV: " + path);
  }
  std::string line;
  std::size_t line_number = 1;
  if (!std::getline(in, line)) {
    detail::trace_fail(path, line_number, "missing header row");
  }
  const std::vector<std::string> header =
      detail::split_csv_line(path, line_number, line);
  if (header.size() < 3 || header[0] != "parallel_time" ||
      header[1] != "interactions") {
    detail::trace_fail(path, line_number,
                       "header must be 'parallel_time,interactions,<obs>…'");
  }

  LoadedTrace trace;
  trace.observable_names.assign(header.begin() + 2, header.end());
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;  // a trailing newline is not a row
    const std::vector<std::string> cells =
        detail::split_csv_line(path, line_number, line);
    if (cells.size() != header.size()) {
      // Arity mismatch: the signature of a write cut short. Tolerated only
      // on the very last row, only when asked to.
      const bool at_tail = in.peek() == std::ifstream::traits_type::eof();
      if (tolerate_truncated_tail && at_tail && cells.size() < header.size()) {
        trace.dropped_tail_rows = 1;
        break;
      }
      std::ostringstream what;
      what << "row has " << cells.size() << " cells, header has "
           << header.size() << (cells.size() < header.size()
                                    ? " (truncated write?)"
                                    : "");
      detail::trace_fail(path, line_number, what.str());
    }
    TracePoint point;
    point.parallel_time =
        detail::trace_cell_f64(path, line_number, cells[0], "parallel_time");
    point.interactions =
        detail::trace_cell_u64(path, line_number, cells[1], "interactions");
    point.values.reserve(cells.size() - 2);
    for (std::size_t i = 2; i < cells.size(); ++i) {
      point.values.push_back(
          detail::trace_cell_f64(path, line_number, cells[i], "observable"));
    }
    trace.points.push_back(std::move(point));
  }
  if (in.bad()) {
    throw std::runtime_error("I/O error while reading " + path);
  }
  return trace;
}

}  // namespace popbean
