// Fixed-width table printing and JSON report fragments for bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace popbean {

// Prints aligned, right-justified columns:
//
//   TablePrinter table({"n", "eps", "time"});
//   table.header(std::cout);
//   table.row(std::cout, {"101", "0.0099", "25.4"});
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns,
                        std::size_t min_width = 12);

  void header(std::ostream& os) const;
  void row(std::ostream& os, const std::vector<std::string>& cells) const;

  std::size_t columns() const noexcept { return columns_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
};

// Formats a double compactly (%.4g).
std::string format_value(double value);

// Section banner used by the bench binaries.
void print_banner(std::ostream& os, const std::string& title);

// Streams a Summary as a JSON object ({count, mean, stddev, min, q25,
// median, q75, max}).
void write_stats_json(JsonWriter& json, const Summary& stats);

// Streams a ReplicationSummary as a JSON object carrying the full RunStatus
// breakdown (converged / step_limit / absorbing), the correct/wrong split,
// derived accuracy and error fractions, and the parallel-time summary —
// everything needed to read fault-sweep output without re-running.
void write_summary_json(JsonWriter& json, const ReplicationSummary& summary);

}  // namespace popbean
