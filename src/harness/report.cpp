#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace popbean {

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           std::size_t min_width)
    : columns_(std::move(columns)) {
  POPBEAN_CHECK(!columns_.empty());
  widths_.reserve(columns_.size());
  for (const auto& name : columns_) {
    widths_.push_back(std::max(min_width, name.size() + 2));
  }
}

void TablePrinter::header(std::ostream& os) const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const std::string& name = columns_[i];
    os << std::string(widths_[i] - name.size(), ' ') << name;
    total += widths_[i];
  }
  os << "\n" << std::string(total, '-') << "\n";
}

void TablePrinter::row(std::ostream& os,
                       const std::vector<std::string>& cells) const {
  POPBEAN_CHECK(cells.size() == columns_.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    if (cell.size() >= widths_[i]) {
      os << ' ' << cell;
    } else {
      os << std::string(widths_[i] - cell.size(), ' ') << cell;
    }
  }
  os << "\n";
}

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

void write_stats_json(JsonWriter& json, const Summary& stats) {
  json.begin_object();
  json.kv("count", stats.count);
  json.kv("mean", stats.mean);
  json.kv("stddev", stats.stddev);
  json.kv("min", stats.min);
  json.kv("q25", stats.q25);
  json.kv("median", stats.median);
  json.kv("q75", stats.q75);
  json.kv("max", stats.max);
  json.end_object();
}

void write_summary_json(JsonWriter& json, const ReplicationSummary& summary) {
  json.begin_object();
  json.kv("replicates", summary.replicates);
  json.kv("converged", summary.converged);
  json.kv("correct", summary.correct);
  json.kv("wrong", summary.wrong);
  json.kv("step_limit", summary.step_limit);
  json.kv("absorbing", summary.absorbing);
  json.kv("timed_out", summary.timed_out);
  json.kv("unresolved", summary.unresolved());
  json.kv("accuracy", summary.accuracy());
  json.kv("error_fraction", summary.error_fraction());
  json.key("parallel_time");
  write_stats_json(json, summary.parallel_time);
  json.end_object();
}

}  // namespace popbean
