#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace popbean {

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           std::size_t min_width)
    : columns_(std::move(columns)) {
  POPBEAN_CHECK(!columns_.empty());
  widths_.reserve(columns_.size());
  for (const auto& name : columns_) {
    widths_.push_back(std::max(min_width, name.size() + 2));
  }
}

void TablePrinter::header(std::ostream& os) const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const std::string& name = columns_[i];
    os << std::string(widths_[i] - name.size(), ' ') << name;
    total += widths_[i];
  }
  os << "\n" << std::string(total, '-') << "\n";
}

void TablePrinter::row(std::ostream& os,
                       const std::vector<std::string>& cells) const {
  POPBEAN_CHECK(cells.size() == columns_.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    if (cell.size() >= widths_[i]) {
      os << ' ' << cell;
    } else {
      os << std::string(widths_[i] - cell.size(), ' ') << cell;
    }
  }
  os << "\n";
}

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

}  // namespace popbean
