// Experiment harness: runs seeded, replicated majority instances of any
// protocol on a chosen engine and aggregates outcome statistics. This is
// the layer the reproduction benches (Figures 3 and 4, the scaling and
// lower-bound studies) are written against.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "population/agent_engine.hpp"
#include "population/configuration.hpp"
#include "population/count_engine.hpp"
#include "population/protocol.hpp"
#include "population/run.hpp"
#include "population/skip_engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace popbean {

enum class EngineKind {
  kAgent,  // explicit agent array, O(1)/interaction
  kCount,  // Fenwick-sampled counts, O(log s)/interaction
  kSkip,   // jump-chain (null-interaction skipping), O(s)/productive step
  kAuto,   // kSkip when the state space is small enough, else kCount
};

std::string to_string(EngineKind kind);

// A majority-problem input: n agents, the majority opinion leading by
// `margin` agents (so ε = margin / n, paper §2).
struct MajorityInstance {
  std::uint64_t n = 0;
  std::uint64_t margin = 0;
  Opinion majority = Opinion::A;

  double epsilon() const noexcept {
    return static_cast<double>(margin) / static_cast<double>(n);
  }
  Output correct_output() const noexcept { return output_of(majority); }
};

// Builds an instance with ε as close as possible to `epsilon_target`:
// margin = round(ε·n) clamped to [1, n] and adjusted to n's parity so the
// two camps are integral.
inline MajorityInstance make_instance(std::uint64_t n, double epsilon_target,
                                      Opinion majority = Opinion::A) {
  POPBEAN_CHECK(n >= 2);
  POPBEAN_CHECK(epsilon_target > 0.0 && epsilon_target <= 1.0);
  auto margin = static_cast<std::uint64_t>(
      std::llround(epsilon_target * static_cast<double>(n)));
  if (margin < 1) margin = 1;
  if (margin > n) margin = n;
  if ((n - margin) % 2 != 0) {
    margin = margin == n ? margin - 1 : margin + 1;
  }
  POPBEAN_CHECK((n - margin) % 2 == 0 && margin >= 1);
  return {n, margin, majority};
}

// Runs one replicate to convergence. `stream` individualizes the RNG so
// replicate r of a sweep point is reproducible in isolation.
template <ProtocolLike P>
RunResult run_majority_once(const P& protocol, const MajorityInstance& instance,
                            EngineKind kind, std::uint64_t seed,
                            std::uint64_t stream,
                            std::uint64_t max_interactions) {
  const Counts counts = majority_instance_with_margin(
      protocol, instance.n, instance.margin, instance.majority);
  Xoshiro256ss rng(seed, stream);
  if (kind == EngineKind::kAuto) {
    kind = protocol.num_states() <= SkipEngine<P>::kMaxStates
               ? EngineKind::kSkip
               : EngineKind::kCount;
  }
  switch (kind) {
    case EngineKind::kAgent: {
      AgentEngine<P> engine(protocol, counts);
      engine.shuffle_placement(rng);
      return run_to_convergence(engine, rng, max_interactions);
    }
    case EngineKind::kCount: {
      CountEngine<P> engine(protocol, counts);
      return run_to_convergence(engine, rng, max_interactions);
    }
    case EngineKind::kSkip: {
      SkipEngine<P> engine(protocol, counts);
      return run_to_convergence(engine, rng, max_interactions);
    }
    case EngineKind::kAuto:
      break;
  }
  POPBEAN_CHECK_MSG(false, "unreachable engine kind");
  return {};
}

// Aggregate over replicates of one experimental point, with the full
// RunStatus breakdown — fault studies need to distinguish "ran out of
// budget" from "the population halted with mixed outputs".
struct ReplicationSummary {
  std::size_t replicates = 0;
  std::size_t converged = 0;
  std::size_t correct = 0;    // converged to the majority output
  std::size_t wrong = 0;      // converged to the minority output
  std::size_t step_limit = 0; // interaction budget exhausted, outputs mixed
  std::size_t absorbing = 0;  // no productive interaction left, outputs mixed
  std::size_t timed_out = 0;  // wall-clock timeout, retries exhausted (only
                              // the crash-tolerant sweep produces these)
  Summary parallel_time;      // over converged replicates

  std::size_t unresolved() const noexcept {
    return step_limit + absorbing + timed_out;
  }

  // The paper's Figure 3 (right): fraction of runs ending in the error
  // final state.
  double error_fraction() const noexcept {
    return replicates == 0
               ? 0.0
               : static_cast<double>(wrong) / static_cast<double>(replicates);
  }

  // Fraction of replicates that converged to the correct output — the y-axis
  // of the fault-sweep accuracy curves (1.0 at fault rate 0 for the exact
  // protocols).
  double accuracy() const noexcept {
    return replicates == 0
               ? 0.0
               : static_cast<double>(correct) /
                     static_cast<double>(replicates);
  }
};

// Fans `replicates` runs of the instance across the pool. Replicate r uses
// RNG stream `stream_base + r`.
template <ProtocolLike P>
ReplicationSummary run_replicates(ThreadPool& pool, const P& protocol,
                                  const MajorityInstance& instance,
                                  EngineKind kind, std::size_t replicates,
                                  std::uint64_t seed,
                                  std::uint64_t max_interactions,
                                  std::uint64_t stream_base = 0) {
  POPBEAN_CHECK(replicates > 0);
  std::vector<RunResult> results(replicates);
  parallel_for_index(pool, replicates, [&](std::size_t r) {
    results[r] = run_majority_once(protocol, instance, kind, seed,
                                   stream_base + r, max_interactions);
  });

  ReplicationSummary summary;
  summary.replicates = replicates;
  std::vector<double> times;
  times.reserve(replicates);
  for (const RunResult& result : results) {
    switch (result.status) {
      case RunStatus::kConverged:
        ++summary.converged;
        times.push_back(result.parallel_time);
        if (result.decided == instance.correct_output()) {
          ++summary.correct;
        } else {
          ++summary.wrong;
        }
        break;
      case RunStatus::kStepLimit:
        ++summary.step_limit;
        break;
      case RunStatus::kAbsorbing:
        ++summary.absorbing;
        break;
    }
  }
  if (!times.empty()) summary.parallel_time = summarize(times);
  return summary;
}

}  // namespace popbean
