// Sweep checkpoint manifests (DESIGN.md §7): the on-disk record of which
// (point, replicate) cells of a fault sweep have finished, and with what
// outcome, so an interrupted sweep resumes instead of restarting.
//
// The manifest is a line-oriented text file, appended to as cells drain:
//
//   popbean-fault-manifest v1
//   config <fingerprint-hex>
//   cell <p> <r> <timed_out> <status> <decided> <interactions>
//        <crashes> <recoveries> <corruptions> <sign_flips> <stuck>
//        <schedule_delays> <injected_interactions> <violated>
//        <violation_step> # <crc-hex>                       (one line)
//
// Robustness properties the resume path relies on:
//   * every cell line carries its own FNV-1a checksum — a SIGKILL mid-write
//     truncates at most the final line, which then fails its checksum and is
//     simply dropped (that cell re-runs on resume);
//   * the config fingerprint binds the manifest to the exact sweep
//     (protocol, grid, seed, budgets): resuming with different parameters is
//     refused rather than silently merging incompatible results;
//   * cell payloads are integral (violation *step*, not time), so a merged
//     resume aggregates to bit-identical JSON against an uninterrupted run.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "faults/fault_log.hpp"
#include "population/run.hpp"
#include "recovery/snapshot.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"

namespace popbean {

inline constexpr std::string_view kManifestHeader = "popbean-fault-manifest v1";

// Everything the aggregation step needs about one finished cell.
struct FaultCellOutcome {
  bool timed_out = false;
  RunResult result;  // parallel_time is derived on aggregation, not stored
  faults::FaultCounters counters;
  bool violated = false;
  std::uint64_t violation_step = 0;
};

// Completed cells keyed by (point, replicate).
using ManifestCells =
    std::map<std::pair<std::size_t, std::size_t>, FaultCellOutcome>;

namespace detail {

inline std::string manifest_cell_line(std::size_t point, std::size_t replicate,
                                      const FaultCellOutcome& cell) {
  std::ostringstream os;
  os << "cell " << point << ' ' << replicate << ' ' << (cell.timed_out ? 1 : 0)
     << ' ' << static_cast<int>(cell.result.status) << ' '
     << cell.result.decided << ' ' << cell.result.interactions << ' '
     << cell.counters.crashes << ' ' << cell.counters.recoveries << ' '
     << cell.counters.corruptions << ' ' << cell.counters.sign_flips << ' '
     << cell.counters.stuck << ' ' << cell.counters.schedule_delays << ' '
     << cell.counters.injected_interactions << ' ' << (cell.violated ? 1 : 0)
     << ' ' << cell.violation_step;
  std::ostringstream line;
  line << os.str() << " # " << std::hex << fnv1a64(os.str());
  return line.str();
}

}  // namespace detail

// Appends completed cells to the manifest as they drain. The header and
// fingerprint are written when the file is created; flush() cadence is the
// caller's checkpoint interval.
class ManifestWriter {
 public:
  ManifestWriter(const std::string& path, std::uint64_t fingerprint,
                 bool append) {
    bool fresh = true;
    bool torn_tail = false;
    if (append) {
      std::ifstream existing(path, std::ios::binary);
      if (existing.good()) {
        fresh = false;
        // A SIGKILL mid-append leaves a final line without its newline. A
        // plain append would fuse the first new record onto that fragment,
        // corrupting a cell that actually finished — terminate the torn
        // line first so the fragment fails its checksum alone.
        existing.seekg(0, std::ios::end);
        const std::streamoff size = existing.tellg();
        if (size > 0) {
          existing.seekg(size - 1);
          torn_tail = existing.get() != '\n';
        }
      }
    }
    out_.open(path, fresh ? std::ios::trunc : std::ios::app);
    POPBEAN_CHECK_MSG(out_.good(), "cannot open manifest for writing: " + path);
    if (fresh) {
      out_ << kManifestHeader << "\n";
      out_ << "config " << std::hex << fingerprint << std::dec << "\n";
      out_.flush();
    } else if (torn_tail) {
      out_ << "\n";
    }
  }

  void record(std::size_t point, std::size_t replicate,
              const FaultCellOutcome& cell) {
    out_ << detail::manifest_cell_line(point, replicate, cell) << "\n";
  }

  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
};

// Loads a manifest, dropping any line whose checksum fails (at most the
// truncated tail of a killed run, but tolerated anywhere). Throws
// recovery::SnapshotError on a missing/foreign file or a fingerprint
// mismatch; `dropped_lines`, if given, receives the number of discarded
// cell lines.
inline ManifestCells load_manifest(const std::string& path,
                                   std::uint64_t expected_fingerprint,
                                   std::size_t* dropped_lines = nullptr) {
  std::ifstream in(path);
  if (!in.good()) {
    throw recovery::SnapshotError("cannot open manifest: " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    throw recovery::SnapshotError(path + ": not a popbean fault manifest");
  }
  std::uint64_t fingerprint = 0;
  {
    std::string keyword;
    if (!std::getline(in, line) ||
        !(std::istringstream(line) >> keyword >> std::hex >> fingerprint) ||
        keyword != "config") {
      throw recovery::SnapshotError(path + ": missing config fingerprint");
    }
  }
  if (fingerprint != expected_fingerprint) {
    throw recovery::SnapshotError(
        path + ": config fingerprint mismatch — this manifest belongs to a "
               "different sweep (protocol, grid, seed, or budgets changed); "
               "refusing to resume from it");
  }

  ManifestCells cells;
  std::size_t dropped = 0;
  while (std::getline(in, line)) {
    const std::size_t marker = line.rfind(" # ");
    bool ok = marker != std::string::npos;
    if (ok) {
      const std::string body = line.substr(0, marker);
      std::uint64_t declared = 0;
      std::istringstream crc(line.substr(marker + 3));
      ok = static_cast<bool>(crc >> std::hex >> declared) &&
           declared == fnv1a64(body);
      if (ok) {
        std::istringstream fields(body);
        std::string keyword;
        std::size_t point = 0;
        std::size_t replicate = 0;
        int timed_out = 0;
        int status = 0;
        FaultCellOutcome cell;
        ok = static_cast<bool>(
                 fields >> keyword >> point >> replicate >> timed_out >>
                 status >> cell.result.decided >> cell.result.interactions >>
                 cell.counters.crashes >> cell.counters.recoveries >>
                 cell.counters.corruptions >> cell.counters.sign_flips >>
                 cell.counters.stuck >> cell.counters.schedule_delays >>
                 cell.counters.injected_interactions) &&
             keyword == "cell" && status >= 0 &&
             status <= static_cast<int>(RunStatus::kAbsorbing);
        int violated = 0;
        ok = ok && static_cast<bool>(fields >> violated >> cell.violation_step);
        if (ok) {
          cell.timed_out = timed_out != 0;
          cell.result.status = static_cast<RunStatus>(status);
          cell.violated = violated != 0;
          cells[{point, replicate}] = cell;
        }
      }
    }
    if (!ok) ++dropped;
  }
  if (dropped_lines != nullptr) *dropped_lines = dropped;
  return cells;
}

}  // namespace popbean
