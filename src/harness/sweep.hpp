// Parameter-sweep helpers for the reproduction benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace popbean {

// `count` log-spaced values from low to high inclusive.
inline std::vector<double> log_spaced(double low, double high,
                                      std::size_t count) {
  POPBEAN_CHECK(low > 0.0 && high > low);
  POPBEAN_CHECK(count >= 2);
  std::vector<double> values(count);
  const double log_low = std::log(low);
  const double step = (std::log(high) - log_low) /
                      static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = std::exp(log_low + step * static_cast<double>(i));
  }
  values.front() = low;
  values.back() = high;
  return values;
}

// The ε grid of the paper's Figure 4: powers of 10 from 1/n up, densified
// with a half-decade point, clipped to (0, 0.5].
inline std::vector<double> figure4_epsilons(std::uint64_t n) {
  POPBEAN_CHECK(n >= 4);
  std::vector<double> eps;
  const double floor_eps = 1.0 / static_cast<double>(n);
  for (double e = floor_eps; e <= 0.5; e *= std::sqrt(10.0)) {
    eps.push_back(e);
  }
  if (eps.empty() || eps.back() < 0.5) eps.push_back(0.5);
  return eps;
}

}  // namespace popbean
