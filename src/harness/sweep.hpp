// Parameter-sweep helpers for the reproduction benches, plus the generic
// crash-tolerant cell driver (DESIGN.md §7): a sweep is a grid of
// (point, replicate) cells, each deterministic in isolation, and the driver
// runs the not-yet-done cells through the thread pool with per-cell
// wall-clock timeouts, bounded retry, cooperative cancellation (SIGINT /
// SIGTERM draining), and a watchdog that flags — and abandons — hung cells
// instead of deadlocking on wait_idle().
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace popbean {

// `count` log-spaced values from low to high inclusive.
inline std::vector<double> log_spaced(double low, double high,
                                      std::size_t count) {
  POPBEAN_CHECK(low > 0.0 && high > low);
  POPBEAN_CHECK(count >= 2);
  std::vector<double> values(count);
  const double log_low = std::log(low);
  const double step = (std::log(high) - log_low) /
                      static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = std::exp(log_low + step * static_cast<double>(i));
  }
  values.front() = low;
  values.back() = high;
  return values;
}

// The ε grid of the paper's Figure 4: powers of 10 from 1/n up, densified
// with a half-decade point, clipped to (0, 0.5]. The final 0.5 anchor is
// deduplicated against the geometric ladder with a relative tolerance: when
// the ladder's last rung lands within floating-point noise of 0.5 (some n
// put √10-multiples a few ulps below it), the rung is snapped to 0.5 instead
// of emitting a near-duplicate point that would burn a whole sweep column on
// an indistinguishable ε.
inline std::vector<double> figure4_epsilons(std::uint64_t n) {
  POPBEAN_CHECK(n >= 4);
  std::vector<double> eps;
  const double floor_eps = 1.0 / static_cast<double>(n);
  for (double e = floor_eps; e <= 0.5; e *= std::sqrt(10.0)) {
    eps.push_back(e);
  }
  constexpr double kRelTol = 1e-9;
  if (!eps.empty() && eps.back() >= 0.5 * (1.0 - kRelTol)) {
    eps.back() = 0.5;
  } else {
    eps.push_back(0.5);
  }
  return eps;
}

// --- crash-tolerant cell driver ---------------------------------------------

// One unit of sweep work: replicate `replicate` of grid point `point`.
struct SweepCell {
  std::size_t point = 0;
  std::size_t replicate = 0;
};

struct SweepRunOptions {
  // Per-cell wall-clock budget; zero means unlimited. A cell that exceeds it
  // is abandoned at its next poll and retried up to `max_retries` times —
  // retries help only against *external* slowness (a descheduled VM, a cold
  // cache): the cell's trajectory is deterministic, so a genuinely too-slow
  // cell will time out every attempt and be recorded as timed out.
  std::chrono::milliseconds cell_timeout{0};
  std::size_t max_retries = 1;

  // How often workers poll for cancellation/deadline, in interactions.
  std::uint64_t stop_check_interval = 4096;

  // Set by a signal handler (or a test) to drain: in-flight cells stop at
  // their next poll, pending cells are never started, and the driver
  // returns with `interrupted` set. Nothing is recorded for drained cells,
  // so a later --resume re-runs them.
  const std::atomic<bool>* cancel = nullptr;

  // Main-thread wakeup cadence for draining completed cells and running the
  // watchdog.
  std::chrono::milliseconds watchdog_interval{1000};
  // A cell overdue by more than cell_timeout + grace (per attempt) is
  // flagged hung and told to abandon — the backstop for a worker whose
  // deadline polling is itself wedged. Meaningless when cell_timeout is 0.
  std::chrono::milliseconds watchdog_grace{5000};

  // Optional observability sinks (src/obs): per-cell wall times and outcome
  // counters into `metrics`, one trace span per attempt into `trace`, and
  // one JSONL event per finished cell into `telemetry`. The sinks must
  // outlive the sweep call.
  obs::ObsContext obs;
};

enum class CellOutcomeKind {
  kDone,       // ran to completion; the caller's run_cell stored its result
  kTimedOut,   // every attempt hit the wall-clock budget
  kCancelled,  // drained by cancellation; nothing recorded
};

struct CellSweepReport {
  std::size_t completed = 0;   // kDone cells this run
  std::size_t timed_out = 0;   // kTimedOut cells this run
  std::size_t skipped = 0;     // cells already done before this run (resume)
  std::size_t cancelled = 0;   // cells drained or never started
  std::vector<std::string> hung;  // watchdog-flagged cell labels
  bool interrupted = false;

  bool complete() const noexcept { return !interrupted && cancelled == 0; }
};

// Runs every cell of a points × replicates grid whose `already_done` entry
// (index point·replicates + replicate) is false.
//
//   run_cell(cell, should_stop) -> bool
//     executes one cell on a worker thread; polls should_stop() about every
//     stop_check_interval interactions and returns false if it stopped early
//     (true = completed and its result is stored by the caller).
//
//   on_cell_done(cell, kind)
//     invoked on the *calling* thread, as results drain, for every kDone and
//     kTimedOut cell — the checkpoint hook: append to the manifest here
//     without any locking.
//
// Determinism: the driver imposes no ordering on cell execution, so
// run_cell must derive all randomness from the cell indices (seed/stream),
// never from shared state.
template <typename RunCell, typename OnCellDone>
CellSweepReport run_cell_sweep(ThreadPool& pool, std::size_t points,
                               std::size_t replicates,
                               const std::vector<char>& already_done,
                               const SweepRunOptions& options,
                               RunCell&& run_cell, OnCellDone&& on_cell_done) {
  POPBEAN_CHECK(points > 0 && replicates > 0);
  POPBEAN_CHECK(already_done.size() == points * replicates);
  using Clock = std::chrono::steady_clock;

  struct CellSlot {
    SweepCell cell;
    std::atomic<bool> abandon{false};
    std::atomic<Clock::rep> attempt_started{0};
    CellOutcomeKind kind = CellOutcomeKind::kCancelled;
  };

  CellSweepReport report;
  std::vector<std::unique_ptr<CellSlot>> slots;
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t r = 0; r < replicates; ++r) {
      if (already_done[p * replicates + r]) {
        ++report.skipped;
        continue;
      }
      auto slot = std::make_unique<CellSlot>();
      slot->cell = {p, r};
      slots.push_back(std::move(slot));
    }
  }
  // Metric ids are registered once up front; recording then stays on the
  // registry's wait-free per-thread path inside the workers.
  obs::MetricsRegistry* const metrics = options.obs.metrics;
  obs::TraceCollector* const trace = options.obs.trace;
  obs::TelemetrySink* const telemetry = options.obs.telemetry;
  struct SweepMetricIds {
    obs::CounterId completed, timed_out, cancelled, retries, resume_skipped,
        hung;
    obs::HistogramId cell_ms;
  } ids{};
  if (metrics != nullptr) {
    ids.completed = metrics->counter("sweep.cells_completed");
    ids.timed_out = metrics->counter("sweep.cells_timed_out");
    ids.cancelled = metrics->counter("sweep.cells_cancelled");
    ids.retries = metrics->counter("sweep.cell_retries");
    ids.resume_skipped = metrics->counter("sweep.cells_resume_skipped");
    ids.hung = metrics->counter("sweep.cells_hung");
    ids.cell_ms = metrics->histogram(
        "sweep.cell_ms", Histogram::logarithmic(1e-2, 3.6e6, 44));
    if (report.skipped > 0) metrics->add(ids.resume_skipped, report.skipped);
  }

  if (slots.empty()) return report;

  const auto cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  // Workers push finished slots here; the main thread drains in order of
  // completion and forwards kDone/kTimedOut cells to on_cell_done.
  std::vector<CellSlot*> done_queue;
  std::mutex done_mutex;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (const std::unique_ptr<CellSlot>& owned : slots) {
    CellSlot* slot = owned.get();
    std::ostringstream label;
    label << "cell p" << slot->cell.point << " r" << slot->cell.replicate;
    pool.submit(label.str(), [&, slot] {
      CellOutcomeKind kind = CellOutcomeKind::kCancelled;
      try {
        if (!cancelled()) {
          const std::size_t attempts = 1 + options.max_retries;
          for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
            if (attempt > 0 && metrics != nullptr) {
              metrics->add(ids.retries);
            }
            slot->abandon.store(false, std::memory_order_relaxed);
            const Clock::time_point started = Clock::now();
            slot->attempt_started.store(started.time_since_epoch().count(),
                                        std::memory_order_relaxed);
            const bool bounded = options.cell_timeout.count() > 0;
            const Clock::time_point deadline = started + options.cell_timeout;
            const auto should_stop = [&] {
              return cancelled() ||
                     slot->abandon.load(std::memory_order_relaxed) ||
                     (bounded && Clock::now() >= deadline);
            };
            const bool done = run_cell(slot->cell, should_stop);
            const Clock::time_point finished = Clock::now();
            if (metrics != nullptr) {
              metrics->observe(
                  ids.cell_ms,
                  std::chrono::duration<double, std::milli>(finished - started)
                      .count());
            }
            if (trace != nullptr) {
              trace->complete_event(
                  "cell", "sweep", started, finished,
                  {{"point", static_cast<double>(slot->cell.point)},
                   {"replicate", static_cast<double>(slot->cell.replicate)},
                   {"attempt", static_cast<double>(attempt)},
                   {"done", done ? 1.0 : 0.0}});
            }
            if (done) {
              kind = CellOutcomeKind::kDone;
              break;
            }
            if (cancelled()) {
              kind = CellOutcomeKind::kCancelled;
              break;
            }
            kind = CellOutcomeKind::kTimedOut;  // retry unless attempts spent
          }
        }
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        kind = CellOutcomeKind::kCancelled;  // nothing recorded; rethrown below
      }
      slot->kind = kind;
      slot->attempt_started.store(0, std::memory_order_relaxed);  // watchdog off
      {
        std::lock_guard lock(done_mutex);
        done_queue.push_back(slot);
      }
    });
  }

  // Main loop: wake up on the watchdog cadence, drain completions in
  // checkpoint order, flag overdue cells.
  std::size_t drained = 0;
  const auto drain = [&] {
    std::vector<CellSlot*> batch;
    {
      std::lock_guard lock(done_mutex);
      batch.swap(done_queue);
    }
    for (CellSlot* slot : batch) {
      ++drained;
      const auto emit_telemetry = [&](std::string_view event) {
        if (telemetry == nullptr) return;
        telemetry->record(event, [&](JsonWriter& json) {
          json.kv("point", slot->cell.point);
          json.kv("replicate", slot->cell.replicate);
        });
      };
      switch (slot->kind) {
        case CellOutcomeKind::kDone:
          ++report.completed;
          if (metrics != nullptr) metrics->add(ids.completed);
          emit_telemetry("cell_done");
          on_cell_done(slot->cell, CellOutcomeKind::kDone);
          break;
        case CellOutcomeKind::kTimedOut:
          ++report.timed_out;
          if (metrics != nullptr) metrics->add(ids.timed_out);
          emit_telemetry("cell_timed_out");
          on_cell_done(slot->cell, CellOutcomeKind::kTimedOut);
          break;
        case CellOutcomeKind::kCancelled:
          ++report.cancelled;
          if (metrics != nullptr) metrics->add(ids.cancelled);
          break;
      }
    }
  };

  const bool watchdog_active = options.cell_timeout.count() > 0;
  while (!pool.wait_for(options.watchdog_interval)) {
    drain();
    if (!watchdog_active) continue;
    const auto budget = options.cell_timeout + options.watchdog_grace;
    const Clock::rep now = Clock::now().time_since_epoch().count();
    for (const std::unique_ptr<CellSlot>& owned : slots) {
      CellSlot* slot = owned.get();
      const Clock::rep started =
          slot->attempt_started.load(std::memory_order_relaxed);
      if (started == 0) continue;  // not yet attempted
      if (slot->abandon.load(std::memory_order_relaxed)) continue;
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::duration(now - started));
      if (elapsed <= budget) continue;
      // Overdue past the per-attempt budget: the worker's own deadline poll
      // should have fired long ago. Flag it and force the abandon path.
      slot->abandon.store(true, std::memory_order_relaxed);
      if (metrics != nullptr) metrics->add(ids.hung);
      std::ostringstream what;
      what << "cell p" << slot->cell.point << " r" << slot->cell.replicate
           << " overdue (" << elapsed.count() << " ms elapsed, budget "
           << budget.count() << " ms)";
      report.hung.push_back(what.str());
    }
  }
  drain();
  if (first_error) std::rethrow_exception(first_error);
  report.interrupted = cancelled();
  return report;
}

}  // namespace popbean
