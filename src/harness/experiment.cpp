#include "harness/experiment.hpp"

namespace popbean {

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAgent: return "agent";
    case EngineKind::kCount: return "count";
    case EngineKind::kSkip: return "skip";
    case EngineKind::kAuto: return "auto";
  }
  return "unknown";
}

}  // namespace popbean
