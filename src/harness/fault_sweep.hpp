// Fault sweep: replicated perturbed runs across a grid of fault rates,
// fanned out on the thread pool. This is the harness entry point for
// robustness studies — it produces, per rate, the full outcome breakdown
// (accuracy, error fraction, RunStatus counts), aggregated fault counters,
// and the distribution of first-invariant-violation times in parallel-time
// units: the moment the exactness proof's premise (Invariant 4.3 for AVC)
// died in each replicate.
//
// Fault and schedule models are supplied as factories so every replicate
// gets a fresh, stateless-from-its-own-view instance (models like
// EpidemicRounds carry per-run state), parameterized by the swept rate.
//
// Two entry points share one cell runner and one aggregation:
//   * run_fault_sweep — the simple blocking sweep (unchanged semantics);
//   * run_fault_sweep_recoverable — the crash-tolerant sweep (DESIGN.md §7):
//     per-cell wall-clock timeouts with bounded retry, periodic
//     checkpointing of completed cells to a manifest, --resume skipping
//     finished work, cancellation draining, and a hung-cell watchdog.
//     Because cell (p, r) always runs on rng stream p·replicates + r, a
//     resumed sweep's merged results are bit-identical to an uninterrupted
//     run's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_model.hpp"
#include "faults/invariant_monitor.hpp"
#include "faults/perturbed_engine.hpp"
#include "faults/schedule_model.hpp"
#include "harness/checkpoint.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "population/count_engine.hpp"
#include "population/run.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "verify/linear_invariant.hpp"

namespace popbean {

struct FaultSweepConfig {
  std::uint64_t n = 0;
  double epsilon = 0.0;
  std::size_t replicates = 0;
  std::uint64_t seed = 0;
  std::uint64_t max_interactions = 0;
};

// Aggregate of one rate point.
struct FaultSweepPoint {
  double rate = 0.0;
  ReplicationSummary summary;
  faults::FaultCounters counters;        // summed across replicates
  std::size_t violated = 0;              // replicates whose Φ left Φ(c₀)
  std::vector<double> violation_times;   // parallel time of first violation
  Summary violation_time;                // summarize(violation_times)
};

// Checkpointing/resume/timeout policy of a recoverable sweep.
struct FaultSweepRecovery {
  std::string manifest_path;        // empty = no checkpointing
  bool resume = false;              // load the manifest, skip finished cells
  std::size_t checkpoint_every = 16;  // manifest flush cadence, in cells
  SweepRunOptions run;              // timeouts, retries, cancel, watchdog
};

struct FaultSweepOutcome {
  std::vector<FaultSweepPoint> points;
  CellSweepReport report;
  // Raw per-cell outcomes (index point·replicates + replicate; `present`
  // gates completion) — what --record scans to find a violating cell.
  std::vector<FaultCellOutcome> cells;
  std::vector<char> present;
};

// Binds a manifest to the exact sweep it checkpoints: any change to the
// protocol label, grid, instance, seeding, or budget changes the value.
inline std::uint64_t fault_sweep_fingerprint(const std::string& label,
                                             const std::vector<double>& rates,
                                             const FaultSweepConfig& config) {
  BinaryWriter out;
  out.str(label);
  out.u64(config.n);
  out.f64(config.epsilon);
  out.u64(config.replicates);
  out.u64(config.seed);
  out.u64(config.max_interactions);
  out.u64(rates.size());
  for (const double rate : rates) out.f64(rate);
  return fnv1a64(out.bytes());
}

namespace detail {

// Runs cell (p, r) deterministically on stream p·replicates + r. Returns
// nullopt iff should_stop fired mid-run (the outcome is then undefined and
// nothing may be recorded). Completed cells flush engine transition-kind
// counts, fault tallies, run-status counters, and the run's parallel time
// into `obs.metrics` (when set); abandoned attempts record nothing, so
// metrics never double-count a retried cell.
template <ProtocolLike P, typename FaultFactory, typename ScheduleFactory,
          typename StopFn>
std::optional<FaultCellOutcome> run_fault_cell(
    const P& protocol, const verify::LinearInvariant& invariant,
    const Counts& initial, const FaultSweepConfig& config, double rate,
    std::size_t point, std::size_t replicate, FaultFactory&& make_faults,
    ScheduleFactory&& make_schedule, StopFn&& should_stop,
    std::uint64_t stop_check_interval, const obs::ObsContext& obs = {}) {
  const std::uint64_t stream =
      static_cast<std::uint64_t>(point) * config.replicates + replicate;
  Xoshiro256ss rng(config.seed, stream);
  auto engine = faults::make_perturbed(CountEngine<P>(protocol, initial),
                                       make_faults(rate), make_schedule(),
                                       rng);
  faults::InvariantMonitor monitor(invariant, initial);
  engine.attach_monitor(&monitor);
  obs::EngineProbe probe;
  if (obs.metrics != nullptr) engine.attach_probe(&probe);
  const std::optional<RunResult> result = run_to_convergence_interruptible(
      engine, rng, config.max_interactions, should_stop, stop_check_interval);
  if (!result) return std::nullopt;
  FaultCellOutcome out;
  out.result = *result;
  out.counters = engine.fault_counters();
  out.violated = monitor.violated();
  out.violation_step = monitor.first_violation_step().value_or(0);

  if (obs.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *obs.metrics;
    obs::flush_engine_probe(metrics, probe);
    metrics.add(metrics.counter("faults.crashes"), out.counters.crashes);
    metrics.add(metrics.counter("faults.recoveries"), out.counters.recoveries);
    metrics.add(metrics.counter("faults.corruptions"),
                out.counters.corruptions);
    metrics.add(metrics.counter("faults.sign_flips"), out.counters.sign_flips);
    metrics.add(metrics.counter("faults.stuck"), out.counters.stuck);
    metrics.add(metrics.counter("faults.schedule_delays"),
                out.counters.schedule_delays);
    metrics.add(metrics.counter("faults.injected_interactions"),
                out.counters.injected_interactions);
    switch (result->status) {
      case RunStatus::kConverged:
        metrics.add(metrics.counter("runs.converged"));
        break;
      case RunStatus::kStepLimit:
        metrics.add(metrics.counter("runs.step_limit"));
        break;
      case RunStatus::kAbsorbing:
        metrics.add(metrics.counter("runs.absorbing"));
        break;
    }
    if (out.violated) metrics.add(metrics.counter("runs.violated"));
    metrics.observe(
        metrics.histogram("run.parallel_time",
                          Histogram::logarithmic(1e-2, 1e8, 50)),
        static_cast<double>(result->interactions) /
            static_cast<double>(config.n));
  }
  return out;
}

// Folds per-cell outcomes (cell (p, r) at index p·replicates + r; `present`
// gates which were completed) into per-rate points. Aggregation order is by
// cell index, so the result is independent of execution order — the bit-
// identical-merge guarantee of the resume path.
inline std::vector<FaultSweepPoint> aggregate_fault_cells(
    const std::vector<double>& rates, const FaultSweepConfig& config,
    const MajorityInstance& instance,
    const std::vector<FaultCellOutcome>& cells,
    const std::vector<char>& present) {
  std::vector<FaultSweepPoint> points;
  points.reserve(rates.size());
  for (std::size_t p = 0; p < rates.size(); ++p) {
    FaultSweepPoint point;
    point.rate = rates[p];
    std::vector<double> times;
    for (std::size_t r = 0; r < config.replicates; ++r) {
      const std::size_t index = p * config.replicates + r;
      if (!present[index]) continue;
      const FaultCellOutcome& out = cells[index];
      ++point.summary.replicates;
      if (out.timed_out) {
        ++point.summary.timed_out;
        continue;  // no trustworthy dynamics to aggregate
      }
      point.counters += out.counters;
      if (out.violated) {
        ++point.violated;
        point.violation_times.push_back(
            static_cast<double>(out.violation_step) /
            static_cast<double>(config.n));
      }
      switch (out.result.status) {
        case RunStatus::kConverged:
          ++point.summary.converged;
          times.push_back(static_cast<double>(out.result.interactions) /
                          static_cast<double>(config.n));
          if (out.result.decided == instance.correct_output()) {
            ++point.summary.correct;
          } else {
            ++point.summary.wrong;
          }
          break;
        case RunStatus::kStepLimit:
          ++point.summary.step_limit;
          break;
        case RunStatus::kAbsorbing:
          ++point.summary.absorbing;
          break;
      }
    }
    if (!times.empty()) point.summary.parallel_time = summarize(times);
    if (!point.violation_times.empty()) {
      point.violation_time = summarize(point.violation_times);
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace detail

// Sweeps `rates`, running `config.replicates` perturbed CountEngine runs per
// rate. `make_faults(rate)` builds the fault model, `make_schedule()` the
// schedule model; `invariant` is watched live in every replicate (use the
// protocol's conservation law, e.g. verify::avc_sum_invariant). Replicate r
// of rate point p draws its root rng from stream p·replicates + r, so every
// cell is reproducible in isolation.
template <ProtocolLike P, typename FaultFactory, typename ScheduleFactory>
std::vector<FaultSweepPoint> run_fault_sweep(
    ThreadPool& pool, const P& protocol,
    const verify::LinearInvariant& invariant, const std::vector<double>& rates,
    const FaultSweepConfig& config, FaultFactory&& make_faults,
    ScheduleFactory&& make_schedule) {
  POPBEAN_CHECK(!rates.empty());
  POPBEAN_CHECK(config.replicates > 0);
  POPBEAN_CHECK_MSG(invariant.num_states() == protocol.num_states(),
                    "monitored invariant does not match the protocol");
  const MajorityInstance instance = make_instance(config.n, config.epsilon);
  const Counts initial = majority_instance_with_margin(
      protocol, instance.n, instance.margin, instance.majority);

  const std::size_t total = rates.size() * config.replicates;
  std::vector<FaultCellOutcome> cells(total);
  parallel_for_index(pool, total, [&](std::size_t index) {
    const std::size_t p = index / config.replicates;
    const std::size_t r = index % config.replicates;
    const std::optional<FaultCellOutcome> out = detail::run_fault_cell(
        protocol, invariant, initial, config, rates[p], p, r, make_faults,
        make_schedule, [] { return false; }, 1u << 20);
    cells[index] = *out;  // never stops: the stop fn is constant false
  });
  return detail::aggregate_fault_cells(rates, config, instance, cells,
                                       std::vector<char>(total, 1));
}

// The crash-tolerant sweep. Behavior beyond run_fault_sweep:
//   * recovery.manifest_path + checkpoint_every: completed cells are
//     appended to the manifest (one checksummed line each) and flushed every
//     checkpoint_every cells, so a crash loses at most that much work;
//   * recovery.resume: previously-completed cells are loaded from the
//     manifest (validated against the sweep fingerprint) and skipped;
//   * recovery.run.cell_timeout / max_retries: cells exceeding the wall-
//     clock budget are retried, then recorded as timed out (they surface in
//     ReplicationSummary::timed_out, never as fabricated dynamics);
//   * recovery.run.cancel: a drain flag (set it from SIGINT/SIGTERM) —
//     in-flight cells stop at their next poll, the manifest is flushed, and
//     the partial aggregate is returned with report.interrupted set.
// The aggregate covers exactly the cells present (prior + this run), folded
// in deterministic cell order.
template <ProtocolLike P, typename FaultFactory, typename ScheduleFactory>
FaultSweepOutcome run_fault_sweep_recoverable(
    ThreadPool& pool, const P& protocol,
    const verify::LinearInvariant& invariant, const std::string& label,
    const std::vector<double>& rates, const FaultSweepConfig& config,
    const FaultSweepRecovery& recovery, FaultFactory&& make_faults,
    ScheduleFactory&& make_schedule) {
  POPBEAN_CHECK(!rates.empty());
  POPBEAN_CHECK(config.replicates > 0);
  POPBEAN_CHECK_MSG(invariant.num_states() == protocol.num_states(),
                    "monitored invariant does not match the protocol");
  const MajorityInstance instance = make_instance(config.n, config.epsilon);
  const Counts initial = majority_instance_with_margin(
      protocol, instance.n, instance.margin, instance.majority);
  const std::uint64_t fingerprint =
      fault_sweep_fingerprint(label, rates, config);

  const std::size_t total = rates.size() * config.replicates;
  std::vector<FaultCellOutcome> cells(total);
  std::vector<char> present(total, 0);

  const bool checkpointing = !recovery.manifest_path.empty();
  if (checkpointing && recovery.resume) {
    if (std::ifstream(recovery.manifest_path).good()) {
      for (const auto& [key, cell] :
           load_manifest(recovery.manifest_path, fingerprint)) {
        const auto [p, r] = key;
        if (p >= rates.size() || r >= config.replicates) continue;
        const std::size_t index = p * config.replicates + r;
        cells[index] = cell;
        present[index] = 1;
      }
    }
  }

  std::optional<ManifestWriter> manifest;
  if (checkpointing) {
    manifest.emplace(recovery.manifest_path, fingerprint, recovery.resume);
  }

  std::size_t since_flush = 0;
  const auto on_cell_done = [&](const SweepCell& cell, CellOutcomeKind kind) {
    const std::size_t index = cell.point * config.replicates + cell.replicate;
    if (kind == CellOutcomeKind::kTimedOut) {
      cells[index] = FaultCellOutcome{};
      cells[index].timed_out = true;
    }
    present[index] = 1;
    if (manifest) {
      manifest->record(cell.point, cell.replicate, cells[index]);
      if (++since_flush >= std::max<std::size_t>(recovery.checkpoint_every, 1)) {
        manifest->flush();
        since_flush = 0;
      }
    }
  };

  CellSweepReport report = run_cell_sweep(
      pool, rates.size(), config.replicates, present, recovery.run,
      [&](const SweepCell& cell, const auto& should_stop) {
        std::optional<FaultCellOutcome> out = detail::run_fault_cell(
            protocol, invariant, initial, config, rates[cell.point],
            cell.point, cell.replicate, make_faults, make_schedule,
            should_stop, recovery.run.stop_check_interval, recovery.run.obs);
        if (!out) return false;
        const std::size_t index =
            cell.point * config.replicates + cell.replicate;
        cells[index] = std::move(*out);
        return true;
      },
      on_cell_done);
  if (manifest) manifest->flush();

  FaultSweepOutcome outcome;
  outcome.points = detail::aggregate_fault_cells(rates, config, instance,
                                                 cells, present);
  outcome.report = std::move(report);
  outcome.cells = std::move(cells);
  outcome.present = std::move(present);
  return outcome;
}

// Streams one sweep (config + per-rate points) as a JSON object under the
// given protocol label.
inline void write_fault_sweep_json(JsonWriter& json, const std::string& label,
                                   const FaultSweepConfig& config,
                                   const std::vector<FaultSweepPoint>& points) {
  json.begin_object();
  json.kv("protocol", label);
  json.kv("n", config.n);
  json.kv("epsilon", config.epsilon);
  json.kv("replicates", config.replicates);
  json.kv("seed", config.seed);
  json.kv("max_interactions", config.max_interactions);
  json.key("points");
  json.begin_array();
  for (const FaultSweepPoint& point : points) {
    json.begin_object();
    json.kv("rate", point.rate);
    json.key("summary");
    write_summary_json(json, point.summary);
    json.key("faults");
    json.begin_object();
    json.kv("crashes", point.counters.crashes);
    json.kv("recoveries", point.counters.recoveries);
    json.kv("corruptions", point.counters.corruptions);
    json.kv("sign_flips", point.counters.sign_flips);
    json.kv("stuck", point.counters.stuck);
    json.kv("schedule_delays", point.counters.schedule_delays);
    json.kv("injected_interactions", point.counters.injected_interactions);
    json.end_object();
    json.kv("violated_replicates", point.violated);
    json.key("first_violation_time");
    write_stats_json(json, point.violation_time);
    json.key("first_violation_times");
    json.begin_array();
    for (double t : point.violation_times) json.value(t);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace popbean
