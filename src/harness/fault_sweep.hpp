// Fault sweep: replicated perturbed runs across a grid of fault rates,
// fanned out on the thread pool. This is the harness entry point for
// robustness studies — it produces, per rate, the full outcome breakdown
// (accuracy, error fraction, RunStatus counts), aggregated fault counters,
// and the distribution of first-invariant-violation times in parallel-time
// units: the moment the exactness proof's premise (Invariant 4.3 for AVC)
// died in each replicate.
//
// Fault and schedule models are supplied as factories so every replicate
// gets a fresh, stateless-from-its-own-view instance (models like
// EpidemicRounds carry per-run state), parameterized by the swept rate.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_model.hpp"
#include "faults/invariant_monitor.hpp"
#include "faults/perturbed_engine.hpp"
#include "faults/schedule_model.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "population/count_engine.hpp"
#include "population/run.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "verify/linear_invariant.hpp"

namespace popbean {

struct FaultSweepConfig {
  std::uint64_t n = 0;
  double epsilon = 0.0;
  std::size_t replicates = 0;
  std::uint64_t seed = 0;
  std::uint64_t max_interactions = 0;
};

// Aggregate of one rate point.
struct FaultSweepPoint {
  double rate = 0.0;
  ReplicationSummary summary;
  faults::FaultCounters counters;        // summed across replicates
  std::size_t violated = 0;              // replicates whose Φ left Φ(c₀)
  std::vector<double> violation_times;   // parallel time of first violation
  Summary violation_time;                // summarize(violation_times)
};

// Sweeps `rates`, running `config.replicates` perturbed CountEngine runs per
// rate. `make_faults(rate)` builds the fault model, `make_schedule()` the
// schedule model; `invariant` is watched live in every replicate (use the
// protocol's conservation law, e.g. verify::avc_sum_invariant). Replicate r
// of rate point p draws its root rng from stream p·replicates + r, so every
// cell is reproducible in isolation.
template <ProtocolLike P, typename FaultFactory, typename ScheduleFactory>
std::vector<FaultSweepPoint> run_fault_sweep(
    ThreadPool& pool, const P& protocol,
    const verify::LinearInvariant& invariant, const std::vector<double>& rates,
    const FaultSweepConfig& config, FaultFactory&& make_faults,
    ScheduleFactory&& make_schedule) {
  POPBEAN_CHECK(!rates.empty());
  POPBEAN_CHECK(config.replicates > 0);
  POPBEAN_CHECK_MSG(invariant.num_states() == protocol.num_states(),
                    "monitored invariant does not match the protocol");
  const MajorityInstance instance = make_instance(config.n, config.epsilon);
  const Counts initial = majority_instance_with_margin(
      protocol, instance.n, instance.margin, instance.majority);

  struct ReplicateOutcome {
    RunResult result;
    faults::FaultCounters counters;
    bool violated = false;
    double violation_time = 0.0;
  };

  std::vector<FaultSweepPoint> points;
  points.reserve(rates.size());
  for (std::size_t p = 0; p < rates.size(); ++p) {
    const double rate = rates[p];
    std::vector<ReplicateOutcome> outcomes(config.replicates);
    parallel_for_index(pool, config.replicates, [&](std::size_t r) {
      const std::uint64_t stream =
          static_cast<std::uint64_t>(p) * config.replicates + r;
      Xoshiro256ss rng(config.seed, stream);
      auto engine = faults::make_perturbed(CountEngine<P>(protocol, initial),
                                           make_faults(rate), make_schedule(),
                                           rng);
      faults::InvariantMonitor monitor(invariant, initial);
      engine.attach_monitor(&monitor);
      ReplicateOutcome& out = outcomes[r];
      out.result = run_to_convergence(engine, rng, config.max_interactions);
      out.counters = engine.fault_counters();
      if (monitor.violated()) {
        out.violated = true;
        out.violation_time =
            static_cast<double>(*monitor.first_violation_step()) /
            static_cast<double>(config.n);
      }
    });

    FaultSweepPoint point;
    point.rate = rate;
    point.summary.replicates = config.replicates;
    std::vector<double> times;
    for (const ReplicateOutcome& out : outcomes) {
      point.counters += out.counters;
      if (out.violated) {
        ++point.violated;
        point.violation_times.push_back(out.violation_time);
      }
      switch (out.result.status) {
        case RunStatus::kConverged:
          ++point.summary.converged;
          times.push_back(out.result.parallel_time);
          if (out.result.decided == instance.correct_output()) {
            ++point.summary.correct;
          } else {
            ++point.summary.wrong;
          }
          break;
        case RunStatus::kStepLimit:
          ++point.summary.step_limit;
          break;
        case RunStatus::kAbsorbing:
          ++point.summary.absorbing;
          break;
      }
    }
    if (!times.empty()) point.summary.parallel_time = summarize(times);
    if (!point.violation_times.empty()) {
      point.violation_time = summarize(point.violation_times);
    }
    points.push_back(std::move(point));
  }
  return points;
}

// Streams one sweep (config + per-rate points) as a JSON object under the
// given protocol label.
inline void write_fault_sweep_json(JsonWriter& json, const std::string& label,
                                   const FaultSweepConfig& config,
                                   const std::vector<FaultSweepPoint>& points) {
  json.begin_object();
  json.kv("protocol", label);
  json.kv("n", config.n);
  json.kv("epsilon", config.epsilon);
  json.kv("replicates", config.replicates);
  json.kv("seed", config.seed);
  json.kv("max_interactions", config.max_interactions);
  json.key("points");
  json.begin_array();
  for (const FaultSweepPoint& point : points) {
    json.begin_object();
    json.kv("rate", point.rate);
    json.key("summary");
    write_summary_json(json, point.summary);
    json.key("faults");
    json.begin_object();
    json.kv("crashes", point.counters.crashes);
    json.kv("recoveries", point.counters.recoveries);
    json.kv("corruptions", point.counters.corruptions);
    json.kv("sign_flips", point.counters.sign_flips);
    json.kv("stuck", point.counters.stuck);
    json.kv("schedule_delays", point.counters.schedule_delays);
    json.kv("injected_interactions", point.counters.injected_interactions);
    json.end_object();
    json.kv("violated_replicates", point.violated);
    json.key("first_violation_time");
    write_stats_json(json, point.violation_time);
    json.key("first_violation_times");
    json.begin_array();
    for (double t : point.violation_times) json.value(t);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace popbean
