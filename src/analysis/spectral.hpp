// Spectral-gap estimation for interaction graphs.
//
// [DV12] bounds the four-state protocol's expected parallel convergence
// time by (log n + 1)/δ(G, ε), where δ is an eigenvalue gap of the
// pairwise interaction-rate matrices. For uniform-rate graphs the relevant
// quantity is the spectral gap of the normalized adjacency
// A_sym = D^{-1/2} A D^{-1/2}: gap = 1 − λ₂(A_sym), i.e. the second
// eigenvalue of the normalized Laplacian. Well-mixing graphs (clique,
// expanders) have gap Θ(1); the ring's gap is Θ(1/n²) — the orders-of-
// magnitude slowdown bench/ablation_graphs measures.
//
// λ₂ is estimated by power iteration on the *lazy* walk (I + A_sym)/2
// (shifting the spectrum into [0, 1] so bipartite eigenvalues at −1, e.g.
// even rings, cannot hijack the iteration), deflating the known top
// eigenvector D^{1/2}·1.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/interaction_graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean {

// Estimates gap = 1 − λ₂(A_sym) of a connected graph. `iterations` power
// steps (each O(|E|)); accuracy improves geometrically in the eigenvalue
// ratio. For the complete graph the closed form n/(n−1)·(1 − 0) −
// ... reduces to gap = n/(n−1) and is returned directly.
inline double spectral_gap(const InteractionGraph& graph,
                           std::size_t iterations = 3000,
                           std::uint64_t seed = 1) {
  const std::size_t n = graph.num_nodes();
  POPBEAN_CHECK(n >= 2);
  if (graph.is_complete()) {
    // Normalized Laplacian of K_n has eigenvalues {0, n/(n−1)}.
    return static_cast<double>(n) / static_cast<double>(n - 1);
  }
  POPBEAN_CHECK_MSG(graph.is_connected(),
                    "spectral gap of a disconnected graph is 0");

  // Degrees and the deflation vector v1 ∝ D^{1/2}·1.
  std::vector<double> degree(n, 0.0);
  for (const auto& [u, v] : graph.edges()) {
    degree[u] += 1.0;
    degree[v] += 1.0;
  }
  std::vector<double> v1(n);
  double v1_norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v1[i] = std::sqrt(degree[i]);
    v1_norm2 += degree[i];
  }
  const double v1_norm = std::sqrt(v1_norm2);
  for (auto& value : v1) value /= v1_norm;

  Xoshiro256ss rng(seed);
  std::vector<double> x(n), next(n);
  for (auto& value : x) value = rng.unit() - 0.5;

  auto deflate = [&](std::vector<double>& vec) {
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot += vec[i] * v1[i];
    for (std::size_t i = 0; i < n; ++i) vec[i] -= dot * v1[i];
  };
  auto normalize = [&](std::vector<double>& vec) {
    double norm2 = 0.0;
    for (double value : vec) norm2 += value * value;
    const double norm = std::sqrt(norm2);
    POPBEAN_CHECK_MSG(norm > 1e-300, "power iteration collapsed");
    for (auto& value : vec) value /= norm;
    return norm;
  };

  deflate(x);
  normalize(x);
  double lazy_eigenvalue = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    // next = (x + A_sym x) / 2.
    for (std::size_t i = 0; i < n; ++i) next[i] = x[i];
    for (const auto& [u, v] : graph.edges()) {
      const double scale = 1.0 / std::sqrt(degree[u] * degree[v]);
      next[u] += scale * x[v];
      next[v] += scale * x[u];
    }
    for (auto& value : next) value *= 0.5;
    deflate(next);
    lazy_eigenvalue = normalize(next);
    x.swap(next);
  }
  // λ₂(A_sym) = 2·λ_lazy − 1; gap = 1 − λ₂.
  const double lambda2 = 2.0 * lazy_eigenvalue - 1.0;
  return 1.0 - lambda2;
}

}  // namespace popbean
