// Machinery behind the paper's Ω(1/ε) lower bound for four-state exact
// majority (§5.1, Theorem B.1 and Claims B.2–B.9).
//
// The proof is a case analysis over *all* deterministic four-state
// algorithms. We reproduce its skeleton executably:
//
//  * `FourStateTable` — a candidate algorithm: an unordered-pair transition
//    table over states {S0, S1, X, Y} with the paper's WLOG output map
//    γ(S0) = γ(X) = 0, γ(S1) = γ(Y) = 1.
//  * `ConfigurationGraph` — exhaustive reachability over all configurations
//    of n agents (population protocols on a clique are counter machines, so
//    a configuration is just a 4-way count split). It decides the three
//    correctness properties of Theorem B.1 exactly, for a concrete n:
//    non-empty absorbing sets C_i, safety (wrong commitment unreachable),
//    and liveness (correct commitment always reachable).
//  * Claim B.8's structural test: does the table conserve #S0 − #S1?
//    (Such algorithms need Ω(1/ε) expected parallel time.)
//  * Claim B.9's potential test: is there a {±1, ±3} potential with S0, X
//    positive conserved by every interaction? (Such algorithms are incorrect.)
//
// The test suite enumerates candidate tables and checks the paper's
// conclusion empirically: every candidate that is correct for all small n
// conserves #S0 − #S1 — hence the Ω(1/ε) bound applies to it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace popbean::fourstate {

// State ids within the abstract four-state space.
inline constexpr int kS0 = 0;
inline constexpr int kS1 = 1;
inline constexpr int kX = 2;
inline constexpr int kY = 3;

// γ from the paper's WLOG normal form (§5.1 after Claim B.2).
inline constexpr int output_of(int state) {
  return (state == kS1 || state == kY) ? 1 : 0;
}

// An unordered pair of states, canonicalized first <= second.
struct StatePair {
  std::uint8_t first = 0;
  std::uint8_t second = 0;

  static StatePair canonical(int a, int b);

  friend bool operator==(const StatePair&, const StatePair&) = default;
};

// Index of an unordered pair in [0, 10).
int pair_index(int a, int b);
StatePair pair_from_index(int index);

// A deterministic four-state algorithm: unordered pair -> unordered pair.
// (Per Claim B.5, for *correct* algorithms same-output pairs are fixed
// points; the constructor does not enforce this so that incorrect
// candidates can be represented and refuted.)
class FourStateTable {
 public:
  // Identity on every pair.
  FourStateTable();

  // Sets the reaction for the unordered pair {a, b}.
  void set(int a, int b, int result_a, int result_b);

  StatePair result(int a, int b) const;

  // The [DV12]/[MNRS14] protocol expressed in this normal form
  // (S0 = B-strong, S1 = A-strong, X = b-weak, Y = a-weak):
  //   [S0,S1] -> [X,Y], [S0,Y] -> [S0,X], [S1,X] -> [S1,Y].
  static FourStateTable dv12();

  // Claim B.8: every reaction conserves #S0 − #S1.
  bool conserves_strong_difference() const;

  // Claim B.9: some potential assignment from {±1, ±3} with S0, X positive
  // is conserved by every reaction. Returns the potential (indexed by
  // state) if one exists.
  std::optional<std::array<int, 4>> conserved_potential() const;

  std::string describe() const;

 private:
  std::array<StatePair, 10> table_;
};

// A configuration of n agents: counts of S0, S1, X, Y.
struct Config {
  std::array<std::uint16_t, 4> count{};

  std::uint32_t total() const;
  bool unanimous(int output) const;
  friend bool operator==(const Config&, const Config&) = default;
};

// Exhaustive reachability analysis of a candidate algorithm at a fixed
// population size n (the state space has O(n^3) configurations).
class ConfigurationGraph {
 public:
  ConfigurationGraph(const FourStateTable& table, std::uint32_t n);

  std::uint32_t population() const noexcept { return n_; }
  std::size_t num_configs() const noexcept { return configs_.size(); }

  // Index of a configuration (must sum to n).
  std::size_t index_of(const Config& config) const;
  const Config& config_at(std::size_t index) const;

  // All configurations reachable from `start` (inclusive).
  std::vector<bool> reachable_from(const Config& start) const;

  // Configurations committed to output o: every configuration reachable
  // from them (including themselves) is unanimously o. These are exactly
  // the absorbing sets C_o of Theorem B.1.
  const std::vector<bool>& committed(int output) const;

  // Theorem B.1's three correctness properties, checked exactly for this n:
  // for every initial split with a strict majority of S_i agents,
  //   (safety)   no reachable configuration is committed to 1 − i, and
  //   (liveness) every reachable configuration can still reach a
  //              configuration committed to i (implies C_i nonempty).
  bool satisfies_majority_correctness() const;

 private:
  void build();
  std::vector<bool> backward_closure(const std::vector<bool>& targets) const;

  FourStateTable table_;
  std::uint32_t n_;
  std::vector<Config> configs_;
  std::vector<std::vector<std::uint32_t>> successors_;
  std::vector<bool> committed_[2];
};

// Convenience: is the candidate correct for every population size in
// [2, max_n]?
bool correct_up_to(const FourStateTable& table, std::uint32_t max_n);

}  // namespace popbean::fourstate
