// Trajectory invariant checking.
//
// The AVC correctness argument rests on Invariant 4.3: the sum of encoded
// values never changes. These helpers let tests and examples assert such
// invariants along simulated trajectories of any engine.
#pragma once

#include <concepts>
#include <cstdint>

#include "core/avc.hpp"
#include "population/configuration.hpp"
#include "population/run.hpp"
#include "util/rng.hpp"

namespace popbean {

// Checks the AVC sum invariant (paper Invariant 4.3) against the value
// captured at construction.
class AvcSumInvariant {
 public:
  AvcSumInvariant(const avc::AvcProtocol& protocol, const Counts& initial)
      : protocol_(&protocol), expected_(protocol.total_value(initial)) {}

  std::int64_t expected() const noexcept { return expected_; }

  bool holds(const Counts& counts) const {
    return protocol_->total_value(counts) == expected_;
  }

 private:
  const avc::AvcProtocol* protocol_;
  std::int64_t expected_;
};

// Steps `engine` up to `max_interactions`, invoking `inspect(counts)` after
// every `stride` interactions (and once before the first step and once at
// the end). Stops early when all agents share an output. Returns the number
// of interactions executed.
//
// `inspect` is a template parameter rather than std::function: the hook
// fires inside the interaction loop, and a concrete callable inlines where
// type erasure would cost an indirect call (plus a possible allocation at
// the call site) per stride.
template <EngineLike E, std::invocable<const Counts&> Inspect>
std::uint64_t inspect_trajectory(E& engine, Xoshiro256ss& rng,
                                 std::uint64_t max_interactions,
                                 std::uint64_t stride, Inspect&& inspect) {
  inspect(engine.counts());
  std::uint64_t last_inspection = engine.steps();
  while (engine.steps() < max_interactions && !engine.all_same_output()) {
    const std::uint64_t before = engine.steps();
    engine.step(rng);
    if (engine.steps() == before) break;  // absorbing (skip engine)
    if (engine.steps() - last_inspection >= stride) {
      inspect(engine.counts());
      last_inspection = engine.steps();
    }
  }
  inspect(engine.counts());
  return engine.steps();
}

}  // namespace popbean
