#include "analysis/knowledge.hpp"

#include "util/check.hpp"

namespace popbean {

KnowledgeTracker::KnowledgeTracker(std::uint64_t n, std::uint64_t seeds)
    : num_nodes_(n), known_(seeds), in_set_(n, false) {
  POPBEAN_CHECK(n >= 2);
  POPBEAN_CHECK(seeds >= 1 && seeds <= n);
  for (std::uint64_t v = 0; v < seeds; ++v) in_set_[v] = true;
}

void KnowledgeTracker::step(Xoshiro256ss& rng) {
  const std::uint64_t u = rng.below(num_nodes_);
  std::uint64_t v = rng.below(num_nodes_ - 1);
  if (v >= u) ++v;
  if (in_set_[u] != in_set_[v]) {
    in_set_[u] = true;
    in_set_[v] = true;
    ++known_;
  }
  ++steps_;
}

double KnowledgeTracker::run_to_completion(Xoshiro256ss& rng) {
  while (!complete()) step(rng);
  return static_cast<double>(steps_) / static_cast<double>(num_nodes_);
}

double KnowledgeTracker::expected_interactions(std::uint64_t n,
                                               std::uint64_t seeds) {
  POPBEAN_CHECK(n >= 2 && seeds >= 1 && seeds <= n);
  const auto dn = static_cast<double>(n);
  double expected = 0.0;
  for (std::uint64_t i = seeds + 1; i <= n; ++i) {
    const auto di = static_cast<double>(i);
    const double p = 2.0 * (di - 1.0) * (dn - di + 1.0) / (dn * (dn - 1.0));
    expected += 1.0 / p;
  }
  return expected;
}

}  // namespace popbean
