// Mean-field (fluid-limit) dynamics of a population protocol.
//
// As n → ∞ the empirical state distribution x(t) ∈ Δ^s of a population
// protocol on the clique converges (Kurtz's theorem) to the solution of the
// ODE system
//
//     dx_k/dt = Σ_{i,j reactive} x_i · x_j · Δ^{(i,j)}_k ,
//
// where Δ^{(i,j)} is the (integer) change to the count of state k caused by
// the ordered interaction (i, j), and t is parallel time. [PVV09] analyse
// the three-state protocol exactly through this limit system (the paper
// cites their O(log 1/ε + log n) bound for the limit dynamics), and the
// cell-cycle-switch equivalence of [CCN12] is likewise a statement about
// these ODEs.
//
// MeanField compiles any ProtocolLike into its ODE vector field;
// integrate() runs a classic RK4 integrator. Tests validate conservation
// laws (probability mass, the AVC value sum), the known three-state
// equilibria, and convergence of stochastic runs to the fluid limit as n
// grows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

class MeanField {
 public:
  template <ProtocolLike P>
  explicit MeanField(const P& protocol)
      : num_states_(protocol.num_states()) {
    for (State i = 0; i < num_states_; ++i) {
      for (State j = 0; j < num_states_; ++j) {
        const Transition t = protocol.apply(i, j);
        if (is_null(t, i, j)) continue;
        Term term;
        term.i = i;
        term.j = j;
        add_delta(term, i, -1);
        add_delta(term, j, -1);
        add_delta(term, t.initiator, +1);
        add_delta(term, t.responder, +1);
        // Drop reactions that are pure swaps (no net count change).
        term.deltas.erase(
            std::remove_if(term.deltas.begin(), term.deltas.end(),
                           [](const auto& d) { return d.second == 0; }),
            term.deltas.end());
        if (!term.deltas.empty()) terms_.push_back(std::move(term));
      }
    }
  }

  std::size_t num_states() const noexcept { return num_states_; }
  std::size_t num_reactive_terms() const noexcept { return terms_.size(); }

  // dx/dt at the given state distribution (x need not be normalized; the
  // field is the formal polynomial above).
  std::vector<double> derivative(const std::vector<double>& x) const {
    POPBEAN_CHECK(x.size() == num_states_);
    std::vector<double> dx(num_states_, 0.0);
    for (const Term& term : terms_) {
      const double rate = x[term.i] * x[term.j];
      for (const auto& [state, delta] : term.deltas) {
        dx[state] += rate * static_cast<double>(delta);
      }
    }
    return dx;
  }

  // Fourth-order Runge–Kutta from x0 over `steps` steps of size dt.
  // `inspect(t, x)` is called before the first step and after every step.
  std::vector<double> integrate(
      std::vector<double> x, double dt, std::size_t steps,
      const std::function<void(double, const std::vector<double>&)>& inspect =
          nullptr) const {
    POPBEAN_CHECK(x.size() == num_states_);
    POPBEAN_CHECK(dt > 0.0);
    double t = 0.0;
    if (inspect) inspect(t, x);
    std::vector<double> k1, k2, k3, k4, probe(num_states_);
    for (std::size_t step = 0; step < steps; ++step) {
      k1 = derivative(x);
      for (std::size_t s = 0; s < num_states_; ++s) {
        probe[s] = x[s] + 0.5 * dt * k1[s];
      }
      k2 = derivative(probe);
      for (std::size_t s = 0; s < num_states_; ++s) {
        probe[s] = x[s] + 0.5 * dt * k2[s];
      }
      k3 = derivative(probe);
      for (std::size_t s = 0; s < num_states_; ++s) {
        probe[s] = x[s] + dt * k3[s];
      }
      k4 = derivative(probe);
      for (std::size_t s = 0; s < num_states_; ++s) {
        x[s] += dt / 6.0 * (k1[s] + 2.0 * k2[s] + 2.0 * k3[s] + k4[s]);
      }
      t += dt;
      if (inspect) inspect(t, x);
    }
    return x;
  }

  // Integrates until `done(x)` holds or t exceeds t_max; returns the time
  // (or t_max if the predicate never held).
  double integrate_until(std::vector<double> x, double dt, double t_max,
                         const std::function<bool(const std::vector<double>&)>&
                             done) const {
    POPBEAN_CHECK(dt > 0.0 && t_max > 0.0);
    double reached = t_max;
    bool found = done(x);
    if (found) return 0.0;
    double t = 0.0;
    while (t < t_max) {
      x = integrate(std::move(x), dt, 1);
      t += dt;
      if (done(x)) {
        reached = t;
        break;
      }
    }
    return reached;
  }

 private:
  struct Term {
    State i = 0;
    State j = 0;
    std::vector<std::pair<State, int>> deltas;  // state -> net count change
  };

  static void add_delta(Term& term, State state, int amount) {
    for (auto& [existing, delta] : term.deltas) {
      if (existing == state) {
        delta += amount;
        return;
      }
    }
    term.deltas.emplace_back(state, amount);
  }

  std::size_t num_states_;
  std::vector<Term> terms_;
};

// Normalized state distribution of a configuration.
inline std::vector<double> to_distribution(const std::vector<std::uint64_t>& counts) {
  double total = 0.0;
  for (auto c : counts) total += static_cast<double>(c);
  POPBEAN_CHECK(total > 0.0);
  std::vector<double> x(counts.size());
  for (std::size_t s = 0; s < counts.size(); ++s) {
    x[s] = static_cast<double>(counts[s]) / total;
  }
  return x;
}

}  // namespace popbean
