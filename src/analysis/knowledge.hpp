// Information-propagation ("knowledge set") process from the Ω(log n) lower
// bound (paper §5.2, Theorem C.1 and Claim C.2).
//
// K_0 = T (a designated seed set); whenever an interaction pairs a node in
// K_{t−1} with one outside it, both endpoints join K_t. A node whose initial
// value could decide the majority cannot be output-committed before it is
// causally reached, so the parallel time for |K_t| to reach n lower-bounds
// convergence; it concentrates around Θ(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace popbean {

class KnowledgeTracker {
 public:
  // n nodes, the first `seeds` of which form T (the paper uses |T| = 3).
  KnowledgeTracker(std::uint64_t n, std::uint64_t seeds = 3);

  std::uint64_t num_nodes() const noexcept { return num_nodes_; }
  std::uint64_t known() const noexcept { return known_; }
  std::uint64_t steps() const noexcept { return steps_; }
  bool complete() const noexcept { return known_ == num_nodes_; }

  // One uniformly random ordered pair of distinct nodes on the clique.
  void step(Xoshiro256ss& rng);

  // Runs until every node is in K_t; returns the parallel time (steps / n).
  double run_to_completion(Xoshiro256ss& rng);

  // Expected number of interactions until |K| = n, by the coupon-style sum
  // E[Y] = Σ_{i=|T|+1..n} 1/p_i with p_i = 2(i−1)(n−i+1)/(n(n−1))
  // (both orientations of a K–non-K pair grow the set). Used by the
  // lower-bound bench to overlay theory on measurement.
  static double expected_interactions(std::uint64_t n, std::uint64_t seeds = 3);

 private:
  std::uint64_t num_nodes_;
  std::uint64_t known_;
  std::uint64_t steps_ = 0;
  std::vector<bool> in_set_;
};

}  // namespace popbean
