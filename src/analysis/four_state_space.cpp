#include "analysis/four_state_space.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "util/check.hpp"

namespace popbean::fourstate {

namespace {

constexpr const char* kStateNames[4] = {"S0", "S1", "X", "Y"};

}  // namespace

StatePair StatePair::canonical(int a, int b) {
  POPBEAN_CHECK(a >= 0 && a < 4 && b >= 0 && b < 4);
  if (a > b) std::swap(a, b);
  return {static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)};
}

int pair_index(int a, int b) {
  const StatePair p = StatePair::canonical(a, b);
  // Row-major over the upper triangle of a 4x4 grid (10 cells).
  static constexpr int kOffset[4] = {0, 4, 7, 9};
  return kOffset[p.first] + (p.second - p.first);
}

StatePair pair_from_index(int index) {
  POPBEAN_CHECK(index >= 0 && index < 10);
  for (int a = 0; a < 4; ++a) {
    for (int b = a; b < 4; ++b) {
      if (pair_index(a, b) == index) {
        return StatePair::canonical(a, b);
      }
    }
  }
  POPBEAN_CHECK_MSG(false, "unreachable");
  return {};
}

FourStateTable::FourStateTable() {
  for (int i = 0; i < 10; ++i) table_[static_cast<std::size_t>(i)] = pair_from_index(i);
}

void FourStateTable::set(int a, int b, int result_a, int result_b) {
  table_[static_cast<std::size_t>(pair_index(a, b))] =
      StatePair::canonical(result_a, result_b);
}

StatePair FourStateTable::result(int a, int b) const {
  return table_[static_cast<std::size_t>(pair_index(a, b))];
}

FourStateTable FourStateTable::dv12() {
  FourStateTable t;
  t.set(kS0, kS1, kX, kY);
  t.set(kS0, kY, kS0, kX);
  t.set(kS1, kX, kS1, kY);
  return t;
}

bool FourStateTable::conserves_strong_difference() const {
  auto strong_diff = [](const StatePair& p) {
    const auto term = [](int s) {
      return (s == kS0 ? 1 : 0) - (s == kS1 ? 1 : 0);
    };
    return term(p.first) + term(p.second);
  };
  for (int i = 0; i < 10; ++i) {
    const StatePair in = pair_from_index(i);
    const StatePair out = table_[static_cast<std::size_t>(i)];
    if (strong_diff(in) != strong_diff(out)) return false;
  }
  return true;
}

std::optional<std::array<int, 4>> FourStateTable::conserved_potential() const {
  // Claim B.9: potentials {−3, −1, 1, 3}, one per state, S0 and X positive.
  static constexpr std::array<std::array<int, 4>, 4> kAssignments = {{
      // {pot(S0), pot(S1), pot(X), pot(Y)}
      {{3, -3, 1, -1}},
      {{3, -1, 1, -3}},
      {{1, -3, 3, -1}},
      {{1, -1, 3, -3}},
  }};
  for (const auto& pot : kAssignments) {
    bool conserved = true;
    for (int i = 0; i < 10 && conserved; ++i) {
      const StatePair in = pair_from_index(i);
      const StatePair out = table_[static_cast<std::size_t>(i)];
      conserved = pot[in.first] + pot[in.second] ==
                  pot[out.first] + pot[out.second];
    }
    if (conserved) return pot;
  }
  return std::nullopt;
}

std::string FourStateTable::describe() const {
  std::ostringstream os;
  for (int i = 0; i < 10; ++i) {
    const StatePair in = pair_from_index(i);
    const StatePair out = table_[static_cast<std::size_t>(i)];
    if (in == out) continue;
    os << "[" << kStateNames[in.first] << "," << kStateNames[in.second]
       << "]->[" << kStateNames[out.first] << "," << kStateNames[out.second]
       << "] ";
  }
  const std::string text = os.str();
  return text.empty() ? "identity" : text;
}

std::uint32_t Config::total() const {
  return static_cast<std::uint32_t>(count[0]) + count[1] + count[2] + count[3];
}

bool Config::unanimous(int output) const {
  for (int s = 0; s < 4; ++s) {
    if (output_of(s) != output && count[static_cast<std::size_t>(s)] > 0) {
      return false;
    }
  }
  return true;
}

ConfigurationGraph::ConfigurationGraph(const FourStateTable& table,
                                       std::uint32_t n)
    : table_(table), n_(n) {
  POPBEAN_CHECK(n >= 2);
  POPBEAN_CHECK_MSG(n <= 64, "configuration graphs are O(n^3); keep n small");
  build();
}

std::size_t ConfigurationGraph::index_of(const Config& config) const {
  POPBEAN_CHECK(config.total() == n_);
  const auto it = std::lower_bound(
      configs_.begin(), configs_.end(), config,
      [](const Config& lhs, const Config& rhs) { return lhs.count < rhs.count; });
  POPBEAN_CHECK(it != configs_.end() && *it == config);
  return static_cast<std::size_t>(it - configs_.begin());
}

const Config& ConfigurationGraph::config_at(std::size_t index) const {
  POPBEAN_CHECK(index < configs_.size());
  return configs_[index];
}

void ConfigurationGraph::build() {
  // Enumerate all configurations in lexicographic order (so index_of can
  // use binary search).
  for (std::uint32_t c0 = 0; c0 <= n_; ++c0) {
    for (std::uint32_t c1 = 0; c0 + c1 <= n_; ++c1) {
      for (std::uint32_t c2 = 0; c0 + c1 + c2 <= n_; ++c2) {
        const std::uint32_t c3 = n_ - c0 - c1 - c2;
        Config config;
        config.count = {static_cast<std::uint16_t>(c0),
                        static_cast<std::uint16_t>(c1),
                        static_cast<std::uint16_t>(c2),
                        static_cast<std::uint16_t>(c3)};
        configs_.push_back(config);
      }
    }
  }

  successors_.resize(configs_.size());
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    const Config& config = configs_[i];
    for (int a = 0; a < 4; ++a) {
      for (int b = a; b < 4; ++b) {
        const auto ca = config.count[static_cast<std::size_t>(a)];
        const auto cb = config.count[static_cast<std::size_t>(b)];
        const bool applicable = a == b ? ca >= 2 : (ca >= 1 && cb >= 1);
        if (!applicable) continue;
        const StatePair out = table_.result(a, b);
        Config next = config;
        --next.count[static_cast<std::size_t>(a)];
        --next.count[static_cast<std::size_t>(b)];
        ++next.count[out.first];
        ++next.count[out.second];
        if (next == config) continue;
        successors_[i].push_back(static_cast<std::uint32_t>(index_of(next)));
      }
    }
    std::sort(successors_[i].begin(), successors_[i].end());
    successors_[i].erase(
        std::unique(successors_[i].begin(), successors_[i].end()),
        successors_[i].end());
  }

  // committed(o) = configurations that cannot reach any non-unanimous-o
  // configuration = complement of the backward closure of that set.
  for (int o = 0; o < 2; ++o) {
    std::vector<bool> not_unanimous(configs_.size(), false);
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      not_unanimous[i] = !configs_[i].unanimous(o);
    }
    const std::vector<bool> can_leave = backward_closure(not_unanimous);
    committed_[o].resize(configs_.size());
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      committed_[o][i] = !can_leave[i];
    }
  }
}

std::vector<bool> ConfigurationGraph::backward_closure(
    const std::vector<bool>& targets) const {
  // Reverse adjacency on demand.
  std::vector<std::vector<std::uint32_t>> predecessors(configs_.size());
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    for (std::uint32_t j : successors_[i]) {
      predecessors[j].push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<bool> closed = targets;
  std::deque<std::uint32_t> frontier;
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (closed[i]) frontier.push_back(static_cast<std::uint32_t>(i));
  }
  while (!frontier.empty()) {
    const std::uint32_t j = frontier.front();
    frontier.pop_front();
    for (std::uint32_t i : predecessors[j]) {
      if (!closed[i]) {
        closed[i] = true;
        frontier.push_back(i);
      }
    }
  }
  return closed;
}

std::vector<bool> ConfigurationGraph::reachable_from(
    const Config& start) const {
  std::vector<bool> visited(configs_.size(), false);
  std::deque<std::uint32_t> frontier;
  const auto start_index = static_cast<std::uint32_t>(index_of(start));
  visited[start_index] = true;
  frontier.push_back(start_index);
  while (!frontier.empty()) {
    const std::uint32_t i = frontier.front();
    frontier.pop_front();
    for (std::uint32_t j : successors_[i]) {
      if (!visited[j]) {
        visited[j] = true;
        frontier.push_back(j);
      }
    }
  }
  return visited;
}

const std::vector<bool>& ConfigurationGraph::committed(int output) const {
  POPBEAN_CHECK(output == 0 || output == 1);
  return committed_[output];
}

bool ConfigurationGraph::satisfies_majority_correctness() const {
  const std::vector<bool> can_commit[2] = {backward_closure(committed_[0]),
                                           backward_closure(committed_[1])};
  for (std::uint32_t a = 0; a <= n_; ++a) {
    const std::uint32_t b = n_ - a;
    if (a == b) continue;
    // Majority state is S0 when a > b (required output 0), else S1.
    const int required = a > b ? 0 : 1;
    Config start;
    start.count = {static_cast<std::uint16_t>(a), static_cast<std::uint16_t>(b),
                   0, 0};
    const std::vector<bool> reach = reachable_from(start);
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      if (!reach[i]) continue;
      if (committed_[1 - required][i]) return false;        // safety
      if (!can_commit[required][i]) return false;           // liveness
    }
  }
  return true;
}

bool correct_up_to(const FourStateTable& table, std::uint32_t max_n) {
  for (std::uint32_t n = 2; n <= max_n; ++n) {
    if (!ConfigurationGraph(table, n).satisfies_majority_correctness()) {
      return false;
    }
  }
  return true;
}

}  // namespace popbean::fourstate
