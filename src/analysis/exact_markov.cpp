#include "analysis/exact_markov.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace popbean {

void ExactChain::build_configs(std::size_t max_configs) {
  Counts scratch(num_states_, 0);
  // Lexicographic recursive enumeration of compositions of n_.
  const std::function<void(std::size_t, std::uint64_t)> recurse =
      [&](std::size_t state, std::uint64_t remaining) {
        if (state + 1 == num_states_) {
          scratch[state] = remaining;
          configs_.push_back(scratch);
          POPBEAN_CHECK_MSG(configs_.size() <= max_configs,
                            "configuration space too large for exact "
                            "analysis; reduce n or the state count");
          return;
        }
        for (std::uint64_t c = 0; c <= remaining; ++c) {
          scratch[state] = c;
          recurse(state + 1, remaining - c);
        }
        scratch[state] = 0;
      };
  recurse(0, n_);
}

std::size_t ExactChain::index_of(const Counts& config) const {
  POPBEAN_CHECK(config.size() == num_states_);
  POPBEAN_CHECK(population_size(config) == n_);
  const auto it = std::lower_bound(configs_.begin(), configs_.end(), config);
  POPBEAN_CHECK_MSG(it != configs_.end() && *it == config,
                    "configuration not found");
  return static_cast<std::size_t>(it - configs_.begin());
}

void ExactChain::build_edges() {
  edges_.resize(configs_.size());
  self_loop_.assign(configs_.size(), 0.0);
  const double total_pairs =
      static_cast<double>(n_) * static_cast<double>(n_ - 1);

  Counts next(num_states_);
  for (std::size_t idx = 0; idx < configs_.size(); ++idx) {
    const Counts& config = configs_[idx];
    // Accumulate per-target probability.
    std::vector<std::pair<std::size_t, double>> targets;
    double self = 0.0;
    for (State a = 0; a < num_states_; ++a) {
      if (config[a] == 0) continue;
      for (State b = 0; b < num_states_; ++b) {
        if (config[b] == 0) continue;
        const std::uint64_t responders = config[b] - (a == b ? 1 : 0);
        if (responders == 0) continue;
        const double probability =
            static_cast<double>(config[a]) *
            static_cast<double>(responders) / total_pairs;
        const Transition& t = transitions_[a * num_states_ + b];
        if (is_null(t, a, b)) {
          self += probability;
          continue;
        }
        next = config;
        --next[a];
        --next[b];
        ++next[t.initiator];
        ++next[t.responder];
        if (next == config) {
          self += probability;
          continue;
        }
        targets.emplace_back(index_of(next), probability);
      }
    }
    std::sort(targets.begin(), targets.end());
    for (const auto& [target, probability] : targets) {
      if (!edges_[idx].empty() && edges_[idx].back().target == target) {
        edges_[idx].back().probability += probability;
      } else {
        edges_[idx].push_back({static_cast<std::uint32_t>(target),
                               probability});
      }
    }
    self_loop_[idx] = self;
  }
}

bool ExactChain::unanimous(std::size_t config_index, Output output) const {
  const Counts& config = configs_[config_index];
  for (State q = 0; q < num_states_; ++q) {
    if (config[q] > 0 && outputs_[q] != output) return false;
  }
  return true;
}

void ExactChain::solve(std::vector<double>& value,
                       const std::vector<double>& base,
                       const std::vector<bool>& frozen,
                       const std::vector<bool>& active,
                       bool require_escape) const {
  constexpr int kMaxSweeps = 200000;
  constexpr double kTolerance = 1e-12;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double max_change = 0.0;
    for (std::size_t idx = 0; idx < configs_.size(); ++idx) {
      if (frozen[idx] || !active[idx]) continue;
      const double denom = 1.0 - self_loop_[idx];
      if (denom <= 1e-15) {
        // Trapped forever in a non-unanimous configuration. For absorption
        // probabilities the correct value is the initial 0; for expected
        // times this means divergence.
        POPBEAN_CHECK_MSG(!require_escape,
                          "a non-unanimous absorbing configuration is "
                          "reachable; the expected time to unanimity is "
                          "infinite for this protocol/input");
        continue;
      }
      double sum = base[idx];
      for (const Edge& edge : edges_[idx]) {
        sum += edge.probability * value[edge.target];
      }
      const double updated = sum / denom;
      max_change = std::max(max_change, std::abs(updated - value[idx]));
      value[idx] = updated;
    }
    if (max_change < kTolerance) return;
  }
  POPBEAN_CHECK_MSG(false, "Gauss-Seidel failed to converge; the chain may "
                           "not reach unanimity from every configuration");
}

std::vector<bool> ExactChain::reachable_from(const Counts& initial) const {
  std::vector<bool> visited(configs_.size(), false);
  std::vector<std::uint32_t> frontier;
  const auto start = static_cast<std::uint32_t>(index_of(initial));
  visited[start] = true;
  frontier.push_back(start);
  while (!frontier.empty()) {
    const std::uint32_t idx = frontier.back();
    frontier.pop_back();
    for (const Edge& edge : edges_[idx]) {
      if (!visited[edge.target]) {
        visited[edge.target] = true;
        frontier.push_back(edge.target);
      }
    }
  }
  return visited;
}

std::vector<double> ExactChain::transient_distribution(
    const Counts& initial, std::uint64_t steps) const {
  std::vector<double> current(configs_.size(), 0.0);
  current[index_of(initial)] = 1.0;
  std::vector<double> next(configs_.size());
  for (std::uint64_t step = 0; step < steps; ++step) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t idx = 0; idx < configs_.size(); ++idx) {
      const double mass = current[idx];
      if (mass == 0.0) continue;
      next[idx] += mass * self_loop_[idx];
      for (const Edge& edge : edges_[idx]) {
        next[edge.target] += mass * edge.probability;
      }
    }
    current.swap(next);
  }
  return current;
}

double ExactChain::absorption_probability(const Counts& initial,
                                          Output output) const {
  std::vector<double> value(configs_.size(), 0.0);
  const std::vector<double> base(configs_.size(), 0.0);
  std::vector<bool> frozen(configs_.size(), false);
  const std::vector<bool> active(configs_.size(), true);
  for (std::size_t idx = 0; idx < configs_.size(); ++idx) {
    if (unanimous(idx, output)) {
      value[idx] = 1.0;
      frozen[idx] = true;
    } else if (unanimous(idx, 1 - output)) {
      value[idx] = 0.0;
      frozen[idx] = true;
    }
  }
  solve(value, base, frozen, active, /*require_escape=*/false);
  return value[index_of(initial)];
}

double ExactChain::expected_interactions_to_unanimity(
    const Counts& initial) const {
  std::vector<double> value(configs_.size(), 0.0);
  const std::vector<double> base(configs_.size(), 1.0);
  std::vector<bool> frozen(configs_.size(), false);
  const std::vector<bool> active = reachable_from(initial);
  for (std::size_t idx = 0; idx < configs_.size(); ++idx) {
    if (unanimous(idx, 0) || unanimous(idx, 1)) {
      value[idx] = 0.0;
      frozen[idx] = true;
    }
  }
  solve(value, base, frozen, active, /*require_escape=*/true);
  return value[index_of(initial)];
}

}  // namespace popbean
