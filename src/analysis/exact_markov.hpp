// Exact Markov-chain analysis of a population protocol at small scale.
//
// On the clique, a protocol's configuration process is a finite Markov
// chain over count vectors (compositions of n into s parts). For small n
// and s the chain is small enough to analyse *exactly*:
//
//   * absorption probabilities into "all agents output o" — ground truth
//     for error probabilities (e.g. the voter model's minority-fraction
//     error rate [HP99], the three-state error of Fig. 3 right, and AVC's
//     exactness at any margin), and
//   * expected interactions until output unanimity — ground truth for the
//     convergence times every engine estimates by simulation.
//
// The test suite uses this module as an oracle against all three engines;
// a simulator whose distribution drifts from the exact chain fails loudly.
//
// Solving: unanimity states are made absorbing (that matches the paper's
// convergence metric; for the shipped protocols unanimity is in fact
// absorbing). The linear systems are solved by damped Gauss–Seidel with a
// residual stopping rule — the chains here are substochastic after
// absorption removal, so iteration converges geometrically.
#pragma once

#include <cstdint>
#include <vector>

#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

class ExactChain {
 public:
  // Enumerate the chain for populations of exactly n agents. The number of
  // configurations is C(n + s - 1, s - 1); the constructor refuses blow-ups
  // past `max_configs`.
  template <ProtocolLike P>
  ExactChain(const P& protocol, std::uint64_t n,
             std::size_t max_configs = 2'000'000)
      : num_states_(protocol.num_states()), n_(n) {
    POPBEAN_CHECK(n >= 2);
    build_configs(max_configs);
    outputs_.resize(num_states_);
    for (State q = 0; q < num_states_; ++q) outputs_[q] = protocol.output(q);

    // Tabulate transitions once.
    transitions_.resize(num_states_ * num_states_);
    for (State a = 0; a < num_states_; ++a) {
      for (State b = 0; b < num_states_; ++b) {
        transitions_[a * num_states_ + b] = protocol.apply(a, b);
      }
    }
    build_edges();
  }

  std::size_t num_configs() const noexcept { return configs_.size(); }
  std::uint64_t population() const noexcept { return n_; }

  std::size_t index_of(const Counts& config) const;

  // The count vector at a configuration index (inverse of index_of); lets
  // callers that walk reachable_from() inspect the configurations they
  // visited (used by the static verifier's small-n search).
  const Counts& config(std::size_t index) const {
    POPBEAN_CHECK(index < configs_.size());
    return configs_[index];
  }

  // Probability that, starting from `initial`, the chain reaches the
  // absorbing set "all agents map to `output`". (Gauss–Seidel from zero
  // converges to the minimal non-negative solution, which is exactly this
  // probability even when the chain can also get trapped elsewhere.)
  double absorption_probability(const Counts& initial, Output output) const;

  // Expected number of interactions until *some* unanimity is reached.
  // Requires that unanimity is reached with probability 1 from `initial`
  // (true for all shipped protocols): the solver works on the subchain
  // reachable from `initial` and throws if that subchain can trap the
  // process in a non-unanimous configuration (expected time = ∞).
  double expected_interactions_to_unanimity(const Counts& initial) const;

  // Configuration indices reachable from `initial` (inclusive).
  std::vector<bool> reachable_from(const Counts& initial) const;

  // Exact probability distribution over configurations after exactly
  // `steps` interactions from `initial` (one sparse vector–matrix multiply
  // per step). The gold standard for validating the engines' *transient*
  // behaviour, not just their absorption statistics.
  std::vector<double> transient_distribution(const Counts& initial,
                                             std::uint64_t steps) const;

 private:
  struct Edge {
    std::uint32_t target;
    double probability;
  };

  void build_configs(std::size_t max_configs);
  void build_edges();
  bool unanimous(std::size_t config_index, Output output) const;

  // Solves v = base + Σ_edges p·v[target] over non-frozen configs in
  // `active` by Gauss–Seidel; `value` pre-seeded with boundary conditions.
  // `require_escape`: throw if an active, non-frozen configuration has no
  // probability of ever leaving (self-loop mass 1) — used by the
  // expected-time system, where such a configuration means divergence.
  void solve(std::vector<double>& value, const std::vector<double>& base,
             const std::vector<bool>& frozen, const std::vector<bool>& active,
             bool require_escape) const;

  std::size_t num_states_;
  std::uint64_t n_;
  std::vector<Output> outputs_;
  std::vector<Transition> transitions_;
  std::vector<Counts> configs_;
  std::vector<std::vector<Edge>> edges_;      // excluding self-loops
  std::vector<double> self_loop_;             // per-config self probability
};

}  // namespace popbean
