// Prometheus text-format exposition (version 0.0.4) of MetricsRegistry
// snapshots (DESIGN.md §13). This is the fleet-facing face of the metrics
// layer: every serve shard contributes its snapshot under a `shard="i"`
// label, the merged rollup appears as `shard="fleet"`, and the whole
// document is what `popbean-serve --prom-out` writes periodically and
// `popbean-top` tails.
//
// Mapping rules:
//   * names: dots become underscores, a `popbean_` prefix is added, and any
//     character outside [a-zA-Z0-9_:] is replaced by `_`;
//   * counters get the conventional `_total` suffix and `# TYPE … counter`;
//   * gauges map 1:1 with `# TYPE … gauge`;
//   * histograms expand to cumulative `_bucket{le="…"}` series (including
//     `le="+Inf"`), plus `_sum` and `_count`, with `# TYPE … histogram`;
//   * label values escape backslash, double quote, and newline per the
//     format spec.
//
// Bucket exemplars (util/histogram's trace-id exemplars) don't exist in
// text format 0.0.4, so they ride as `# exemplar` comment lines directly
// after their bucket — legal for any 0.0.4 parser (comments are skipped)
// and structured enough for popbean-top and the CI checker to recover the
// trace id.
//
// A small parser (`parse_prometheus`) reads the same dialect back for
// popbean-top and for round-trip tests; it is not a general Prometheus
// parser.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace popbean::obs {

// `serve.jobs.completed` → `popbean_serve_jobs_completed` (no suffix logic;
// callers append `_total` for counters).
std::string prom_metric_name(std::string_view name);

// Escapes a label value for use inside double quotes: backslash, quote,
// newline.
std::string prom_escape_label(std::string_view value);

// Folds many registry snapshots into one: counters summed, gauges
// last-wins by snapshot order, histograms merged (same_shape required —
// all shards register identical shapes by construction).
MetricsRegistry::Snapshot merge_snapshots(
    const std::vector<MetricsRegistry::Snapshot>& snaps);

// Accumulates labelled snapshots and writes one grouped exposition.
class PromExposition {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  // Adds every series of `snap` under `labels` (e.g. {{"shard", "0"}}).
  void add(const MetricsRegistry::Snapshot& snap, Labels labels);

  // Adds a single extra counter series (e.g. trace_events_dropped, which
  // lives in the tool-owned TraceCollector rather than a registry).
  void add_counter(std::string_view name, std::uint64_t value, Labels labels);

  // Writes the exposition: one `# TYPE` line per metric family, then every
  // labelled series of that family. Content type is
  // `text/plain; version=0.0.4`.
  void write(std::ostream& os) const;

 private:
  struct Series {
    Labels labels;
    double value = 0.0;
  };
  struct BucketExemplar {
    std::string bucket_le;
    Labels labels;
    double value = 0.0;
    std::uint64_t trace_id = 0;
  };
  struct Family {
    std::string type;  // "counter" | "gauge" | "histogram"
    std::vector<Series> series;
    std::vector<BucketExemplar> exemplars;  // histogram families only
  };

  Family& family(std::string name, std::string_view type);

  std::vector<std::string> order_;  // first-seen family order
  std::map<std::string, Family> families_;
};

// One parsed sample line (`name{label="v",…} value`).
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

// One parsed `# exemplar` comment line.
struct PromExemplar {
  std::string name;  // the bucket series name (…_bucket)
  std::map<std::string, std::string> labels;
  double value = 0.0;
  std::uint64_t trace_id = 0;
};

struct PromDocument {
  std::vector<PromSample> samples;
  std::vector<PromExemplar> exemplars;
  std::map<std::string, std::string> types;  // family → declared type
};

// Parses the dialect written by PromExposition. Throws std::runtime_error
// with a line number on malformed input — the CI format check relies on
// this being strict.
PromDocument parse_prometheus(std::string_view text);

}  // namespace popbean::obs
