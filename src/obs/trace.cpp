#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>

#include "util/json.hpp"

namespace popbean::obs {

void TraceCollector::complete_event(
    std::string_view name, std::string_view category, Clock::time_point start,
    Clock::time_point end,
    std::vector<std::pair<std::string, double>> args) {
  Event ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'X';
  ev.ts_us = to_us(start);
  ev.dur_us = std::max<std::int64_t>(to_us(end) - ev.ts_us, 0);
  ev.tid = current_thread_index();
  ev.args = std::move(args);
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(ev));
}

void TraceCollector::instant_event(
    std::string_view name, std::string_view category,
    std::vector<std::pair<std::string, double>> args) {
  Event ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'i';
  ev.ts_us = to_us(Clock::now());
  ev.tid = current_thread_index();
  ev.args = std::move(args);
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(ev));
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void TraceCollector::write_chrome_trace(JsonWriter& json,
                                        std::string_view process_name) const {
  std::vector<Event> events;
  {
    std::lock_guard lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });

  json.begin_object();
  json.key("traceEvents");
  json.begin_array();

  // Process metadata so Perfetto labels the single-process timeline.
  json.begin_object();
  json.kv("name", "process_name");
  json.kv("ph", "M");
  json.kv("pid", 1);
  json.kv("tid", std::size_t{0});
  json.key("args");
  json.begin_object();
  json.kv("name", process_name);
  json.end_object();
  json.end_object();

  for (const Event& ev : events) {
    json.begin_object();
    json.kv("name", ev.name);
    json.kv("cat", ev.category);
    json.kv("ph", std::string_view(&ev.phase, 1));
    json.kv("ts", ev.ts_us);
    if (ev.phase == 'X') json.kv("dur", ev.dur_us);
    if (ev.phase == 'i') json.kv("s", "t");  // thread-scoped instant
    json.kv("pid", 1);
    json.kv("tid", ev.tid);
    if (!ev.args.empty()) {
      json.key("args");
      json.begin_object();
      for (const auto& [key, value] : ev.args) json.kv(key, value);
      json.end_object();
    }
    json.end_object();
  }

  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.end_object();
}

void TraceCollector::write_chrome_trace(std::ostream& os,
                                        std::string_view process_name) const {
  JsonWriter json(os);
  write_chrome_trace(json, process_name);
  os << "\n";
}

}  // namespace popbean::obs
