#include "obs/trace.hpp"

#include <algorithm>

#include "obs/context.hpp"
#include "util/json.hpp"

namespace popbean::obs {

void TraceCollector::push(Event ev) {
  std::lock_guard lock(mutex_);
  if (events_.size() < capacity_) {
    events_.push_back(std::move(ev));
    return;
  }
  // Ring saturated: overwrite the oldest slot. head_ marks the logical start
  // of the window, so the slot it points at is always the oldest event.
  events_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceCollector::complete_event(std::string_view name,
                                    std::string_view category,
                                    Clock::time_point start,
                                    Clock::time_point end, Args args) {
  Event ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'X';
  ev.ts_us = to_us(start);
  ev.dur_us = std::max<std::int64_t>(to_us(end) - ev.ts_us, 0);
  ev.tid = current_thread_index();
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceCollector::instant_event(std::string_view name,
                                   std::string_view category, Args args) {
  Event ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'i';
  ev.ts_us = to_us(Clock::now());
  ev.tid = current_thread_index();
  ev.args = std::move(args);
  push(std::move(ev));
}

namespace {

TraceCollector::Event make_async(std::string_view name,
                                 std::string_view category, char phase,
                                 std::uint64_t id, std::int64_t ts_us,
                                 TraceCollector::Args args,
                                 TraceCollector::StringArgs sargs) {
  TraceCollector::Event ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = phase;
  ev.ts_us = ts_us;
  ev.async_id = id;
  ev.tid = current_thread_index();
  ev.args = std::move(args);
  ev.sargs = std::move(sargs);
  return ev;
}

}  // namespace

void TraceCollector::async_begin(std::string_view name,
                                 std::string_view category, std::uint64_t id,
                                 Args args, StringArgs sargs) {
  push(make_async(name, category, 'b', id, to_us(Clock::now()),
                  std::move(args), std::move(sargs)));
}

void TraceCollector::async_instant(std::string_view name,
                                   std::string_view category, std::uint64_t id,
                                   Args args, StringArgs sargs) {
  push(make_async(name, category, 'n', id, to_us(Clock::now()),
                  std::move(args), std::move(sargs)));
}

void TraceCollector::async_end(std::string_view name,
                               std::string_view category, std::uint64_t id,
                               Args args, StringArgs sargs) {
  push(make_async(name, category, 'e', id, to_us(Clock::now()),
                  std::move(args), std::move(sargs)));
}

void TraceCollector::async_span(std::string_view name,
                                std::string_view category, std::uint64_t id,
                                Clock::time_point start, Clock::time_point end,
                                Args args, StringArgs sargs) {
  const std::int64_t start_us = to_us(start);
  const std::int64_t end_us = std::max(to_us(end), start_us);
  // Args ride the begin half; Perfetto shows them on the span itself.
  push(make_async(name, category, 'b', id, start_us, std::move(args),
                  std::move(sargs)));
  push(make_async(name, category, 'e', id, end_us, {}, {}));
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t TraceCollector::dropped_count() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void TraceCollector::write_chrome_trace(JsonWriter& json,
                                        std::string_view process_name) const {
  std::vector<Event> events;
  {
    std::lock_guard lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });

  json.begin_object();
  json.key("traceEvents");
  json.begin_array();

  // Process metadata so Perfetto labels the single-process timeline.
  json.begin_object();
  json.kv("name", "process_name");
  json.kv("ph", "M");
  json.kv("pid", 1);
  json.kv("tid", std::size_t{0});
  json.key("args");
  json.begin_object();
  json.kv("name", process_name);
  json.end_object();
  json.end_object();

  for (const Event& ev : events) {
    const bool is_async =
        ev.phase == 'b' || ev.phase == 'n' || ev.phase == 'e';
    json.begin_object();
    json.kv("name", ev.name);
    json.kv("cat", ev.category);
    json.kv("ph", std::string_view(&ev.phase, 1));
    json.kv("ts", ev.ts_us);
    if (ev.phase == 'X') json.kv("dur", ev.dur_us);
    if (ev.phase == 'i') json.kv("s", "t");  // thread-scoped instant
    if (is_async) json.kv("id", trace_id_hex(ev.async_id));
    json.kv("pid", 1);
    json.kv("tid", ev.tid);
    if (!ev.args.empty() || !ev.sargs.empty()) {
      json.key("args");
      json.begin_object();
      for (const auto& [key, value] : ev.args) json.kv(key, value);
      for (const auto& [key, value] : ev.sargs) json.kv(key, value);
      json.end_object();
    }
    json.end_object();
  }

  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.end_object();
}

void TraceCollector::write_chrome_trace(std::ostream& os,
                                        std::string_view process_name) const {
  JsonWriter json(os);
  write_chrome_trace(json, process_name);
  os << "\n";
}

}  // namespace popbean::obs
