// Chrome trace_event collection (DESIGN.md §8): timestamped spans and
// instants gathered in memory and written as the JSON Object Format that
// chrome://tracing and Perfetto load directly —
//
//   {"traceEvents": [{"name": …, "cat": …, "ph": "X", "ts": µs, "dur": µs,
//                     "pid": 1, "tid": …, "args": {…}}, …],
//    "displayTimeUnit": "ms"}
//
// Timestamps are microseconds on the collector's own steady-clock origin
// (set at construction), so events from all threads share one timeline; tid
// is obs::current_thread_index(), matching the metrics shard index. Numeric
// args only — enough for sweep coordinates (point, replicate, attempt) —
// keeps the recording path allocation-light.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace popbean {
class JsonWriter;
}

namespace popbean::obs {

class TraceCollector {
 public:
  using Clock = std::chrono::steady_clock;

  struct Event {
    std::string name;
    std::string category;
    char phase = 'X';  // 'X' complete, 'i' instant
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;  // complete events only
    std::size_t tid = 0;
    std::vector<std::pair<std::string, double>> args;
  };

  TraceCollector() : origin_(Clock::now()) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  Clock::time_point origin() const noexcept { return origin_; }

  // Records a span [start, end) on the calling thread's track.
  void complete_event(std::string_view name, std::string_view category,
                      Clock::time_point start, Clock::time_point end,
                      std::vector<std::pair<std::string, double>> args = {});

  // Records a point-in-time marker on the calling thread's track.
  void instant_event(std::string_view name, std::string_view category,
                     std::vector<std::pair<std::string, double>> args = {});

  std::size_t event_count() const;

  // Streams the full trace document (events sorted by timestamp, plus
  // process metadata). Safe to call while other threads still record —
  // events are copied out under the lock first.
  void write_chrome_trace(JsonWriter& json,
                          std::string_view process_name = "popbean") const;
  void write_chrome_trace(std::ostream& os,
                          std::string_view process_name = "popbean") const;

 private:
  std::int64_t to_us(Clock::time_point t) const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - origin_)
        .count();
  }

  const Clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

// RAII span: records a complete event on destruction. A null collector makes
// the whole scope a no-op, so call sites need no branching.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, std::string_view name,
            std::string_view category,
            std::vector<std::pair<std::string, double>> args = {})
      : collector_(collector),
        name_(name),
        category_(category),
        args_(std::move(args)),
        start_(collector != nullptr ? TraceCollector::Clock::now()
                                    : TraceCollector::Clock::time_point{}) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (collector_ != nullptr) {
      collector_->complete_event(name_, category_, start_,
                                 TraceCollector::Clock::now(),
                                 std::move(args_));
    }
  }

 private:
  TraceCollector* collector_;
  std::string name_;
  std::string category_;
  std::vector<std::pair<std::string, double>> args_;
  TraceCollector::Clock::time_point start_;
};

}  // namespace popbean::obs
