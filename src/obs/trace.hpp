// Chrome trace_event collection (DESIGN.md §8, §13): timestamped spans and
// instants gathered in memory and written as the JSON Object Format that
// chrome://tracing and Perfetto load directly —
//
//   {"traceEvents": [{"name": …, "cat": …, "ph": "X", "ts": µs, "dur": µs,
//                     "pid": 1, "tid": …, "args": {…}}, …],
//    "displayTimeUnit": "ms"}
//
// Timestamps are microseconds on the collector's own steady-clock origin
// (set at construction), so events from all threads share one timeline; tid
// is obs::current_thread_index(), matching the metrics shard index.
//
// Two recording vocabularies coexist:
//
//   * thread-track events ('X' complete / 'i' instant) — a thread's own
//     timeline, used by the sweep drivers and engine probes since PR 4;
//   * async-span events ('b' begin / 'n' instant / 'e' end) — request-
//     scoped causal trees keyed by a 64-bit id (the TraceContext trace id,
//     obs/context.hpp). Perfetto groups all events sharing one id onto one
//     async track regardless of which worker thread recorded them, which is
//     what makes a job's admission → shard → replicas → vote → retry
//     pipeline readable as one tree even when every stage ran elsewhere.
//
// Args carry numeric values (sweep coordinates, replica indices) plus an
// optional string-arg list for values a double cannot hold losslessly
// (64-bit RNG stream ids, outcome labels, job ids).
//
// Memory is bounded: the collector is a ring buffer of `capacity` events
// (default 1M, ~100s of MB worst case). When full, the oldest event is
// overwritten and `dropped_count` grows — under sustained serve load the
// trace degrades to a sliding window instead of growing without bound.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace popbean {
class JsonWriter;
}

namespace popbean::obs {

class TraceCollector {
 public:
  using Clock = std::chrono::steady_clock;
  using Args = std::vector<std::pair<std::string, double>>;
  using StringArgs = std::vector<std::pair<std::string, std::string>>;

  // Default ring capacity: 1M events. A serve-path job emits ~10 events, so
  // this window holds the last ~100k jobs.
  static constexpr std::size_t kDefaultCapacity = 1'000'000;

  struct Event {
    std::string name;
    std::string category;
    char phase = 'X';  // 'X' complete, 'i' instant, 'b'/'n'/'e' async
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;       // complete events only
    std::uint64_t async_id = 0;    // async events only (trace id)
    std::size_t tid = 0;
    Args args;
    StringArgs sargs;
  };

  explicit TraceCollector(std::size_t capacity = kDefaultCapacity)
      : origin_(Clock::now()), capacity_(capacity == 0 ? 1 : capacity) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  Clock::time_point origin() const noexcept { return origin_; }
  std::size_t capacity() const noexcept { return capacity_; }

  // Records a span [start, end) on the calling thread's track.
  void complete_event(std::string_view name, std::string_view category,
                      Clock::time_point start, Clock::time_point end,
                      Args args = {});

  // Records a point-in-time marker on the calling thread's track.
  void instant_event(std::string_view name, std::string_view category,
                     Args args = {});

  // Async-span vocabulary (Chrome phases 'b'/'n'/'e'): all events recorded
  // with the same nonzero `id` group onto one async track. begin/end pairs
  // nest by timestamp within the track; `async_span` records both halves of
  // an already-measured interval in one call (the serve path mostly knows
  // its durations after the fact).
  void async_begin(std::string_view name, std::string_view category,
                   std::uint64_t id, Args args = {}, StringArgs sargs = {});
  void async_instant(std::string_view name, std::string_view category,
                     std::uint64_t id, Args args = {}, StringArgs sargs = {});
  void async_end(std::string_view name, std::string_view category,
                 std::uint64_t id, Args args = {}, StringArgs sargs = {});
  void async_span(std::string_view name, std::string_view category,
                  std::uint64_t id, Clock::time_point start,
                  Clock::time_point end, Args args = {}, StringArgs sargs = {});

  std::size_t event_count() const;

  // Events overwritten because the ring was full (the satellite counter
  // `trace_events_dropped` in Prometheus expositions).
  std::uint64_t dropped_count() const;

  // Streams the full trace document (events sorted by timestamp, plus
  // process metadata). Safe to call while other threads still record —
  // events are copied out under the lock first.
  void write_chrome_trace(JsonWriter& json,
                          std::string_view process_name = "popbean") const;
  void write_chrome_trace(std::ostream& os,
                          std::string_view process_name = "popbean") const;

 private:
  std::int64_t to_us(Clock::time_point t) const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - origin_)
        .count();
  }

  void push(Event ev);

  const Clock::time_point origin_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;  // ring once size reaches capacity_
  std::size_t head_ = 0;       // next overwrite slot when saturated
  std::uint64_t dropped_ = 0;
};

// RAII span: records a complete event on destruction. A null collector makes
// the whole scope a no-op, so call sites need no branching.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, std::string_view name,
            std::string_view category, TraceCollector::Args args = {})
      : collector_(collector),
        name_(name),
        category_(category),
        args_(std::move(args)),
        start_(collector != nullptr ? TraceCollector::Clock::now()
                                    : TraceCollector::Clock::time_point{}) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (collector_ != nullptr) {
      collector_->complete_event(name_, category_, start_,
                                 TraceCollector::Clock::now(),
                                 std::move(args_));
    }
  }

 private:
  TraceCollector* collector_;
  std::string name_;
  std::string category_;
  TraceCollector::Args args_;
  TraceCollector::Clock::time_point start_;
};

}  // namespace popbean::obs
