#include "obs/metrics.hpp"

#include "obs/probe.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace popbean::obs {

namespace {

std::atomic<std::size_t> g_next_thread_index{0};
std::atomic<std::uint64_t> g_next_registry_generation{1};

}  // namespace

std::size_t current_thread_index() noexcept {
  thread_local const std::size_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

MetricsRegistry::MetricsRegistry()
    : generation_(
          g_next_registry_generation.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

CounterId MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      return {static_cast<std::uint32_t>(i)};
    }
  }
  POPBEAN_CHECK_MSG(counter_names_.size() < kMaxCounters,
                    "MetricsRegistry: counter capacity exhausted");
  counter_names_.emplace_back(name);
  return {static_cast<std::uint32_t>(counter_names_.size() - 1)};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) {
      return {static_cast<std::uint32_t>(i)};
    }
  }
  POPBEAN_CHECK_MSG(gauge_names_.size() < kMaxGauges,
                    "MetricsRegistry: gauge capacity exhausted");
  gauge_names_.emplace_back(name);
  return {static_cast<std::uint32_t>(gauge_names_.size() - 1)};
}

HistogramId MetricsRegistry::histogram(std::string_view name,
                                       const Histogram& shape) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    if (hist_names_[i] == name) {
      POPBEAN_CHECK_MSG(hist_shapes_[i].same_shape(shape),
                        "MetricsRegistry: histogram re-registered with "
                        "different bin edges");
      return {static_cast<std::uint32_t>(i)};
    }
  }
  POPBEAN_CHECK_MSG(hist_names_.size() < kMaxHistograms,
                    "MetricsRegistry: histogram capacity exhausted");
  hist_names_.emplace_back(name);
  hist_shapes_.push_back(shape);
  return {static_cast<std::uint32_t>(hist_names_.size() - 1)};
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_this_thread() {
  // One-entry per-thread cache keyed by the registry generation: the hot
  // path (one registry at a time) never takes the registry mutex. A stale
  // entry can never alias a different registry — generations are
  // process-unique.
  thread_local std::uint64_t cached_generation = 0;
  thread_local Shard* cached_shard = nullptr;
  if (cached_shard != nullptr && cached_generation == generation_) {
    return *cached_shard;
  }
  const std::size_t index = current_thread_index();
  std::lock_guard lock(mutex_);
  if (shards_.size() <= index) shards_.resize(index + 1);
  if (shards_[index] == nullptr) shards_[index] = std::make_unique<Shard>();
  cached_shard = shards_[index].get();
  cached_generation = generation_;
  return *cached_shard;
}

void MetricsRegistry::add(CounterId id, std::uint64_t delta) {
  std::atomic<std::uint64_t>& cell = shard_for_this_thread().counters[id.index];
  // Single writer per shard: a plain load/store pair is a correct increment
  // and cheaper than a fetch_add.
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void MetricsRegistry::set(GaugeId id, double value) {
  gauges_[id.index].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(HistogramId id, double value) {
  observe(id, value, 0);
}

void MetricsRegistry::observe(HistogramId id, double value,
                              std::uint64_t trace_id) {
  Shard& shard = shard_for_this_thread();
  {
    std::lock_guard hist_lock(shard.hist_mutex);
    if (id.index < shard.hists.size() && shard.hists[id.index] != nullptr) {
      shard.hists[id.index]->add(value, trace_id);
      return;
    }
  }
  // First observation on this shard: clone the registered shape. The
  // registry mutex is taken *before* the shard mutex, matching snapshot()'s
  // lock order.
  auto fresh = [&] {
    std::lock_guard lock(mutex_);
    POPBEAN_CHECK(id.index < hist_shapes_.size());
    return std::make_unique<Histogram>(hist_shapes_[id.index]);
  }();
  std::lock_guard hist_lock(shard.hist_mutex);
  if (shard.hists.size() <= id.index) shard.hists.resize(id.index + 1);
  if (shard.hists[id.index] == nullptr) {
    shard.hists[id.index] = std::move(fresh);
  }
  shard.hists[id.index]->add(value, trace_id);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard == nullptr) continue;
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(counter_names_[i], total);
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i],
                             gauges_[i].load(std::memory_order_relaxed));
  }
  snap.histograms.reserve(hist_names_.size());
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    Histogram merged = hist_shapes_[i];
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard == nullptr) continue;
      std::lock_guard hist_lock(shard->hist_mutex);
      if (i < shard->hists.size() && shard->hists[i] != nullptr) {
        merged.merge(*shard->hists[i]);
      }
    }
    snap.histograms.emplace_back(hist_names_[i], std::move(merged));
  }
  return snap;
}

void MetricsRegistry::write_json(JsonWriter& json) const {
  const Snapshot snap = snapshot();
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : snap.counters) json.kv(name, value);
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : snap.gauges) json.kv(name, value);
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, hist] : snap.histograms) {
    json.key(name);
    hist.write_json(json);
  }
  json.end_object();
  json.end_object();
}

#if POPBEAN_OBS_ENABLED
void flush_engine_probe(MetricsRegistry& registry, const EngineProbe& probe,
                        std::string_view prefix) {
  const std::string base(prefix);
  registry.add(registry.counter(base + ".interactions"), probe.interactions);
  registry.add(registry.counter(base + ".productive"), probe.productive);
  for (std::size_t k = 0; k < kReactionKindCount; ++k) {
    registry.add(
        registry.counter(base + ".reactions." +
                         std::string(reaction_kind_name(
                             static_cast<ReactionKind>(k)))),
        probe.kinds[k]);
  }
}
#else
void flush_engine_probe(MetricsRegistry&, const EngineProbe&,
                        std::string_view) {}
#endif

}  // namespace popbean::obs
