// Observability subsystem root (DESIGN.md §8): compile-time switch, the
// hook macro, and the context bundle threaded through the harness drivers.
//
// The subsystem has three sinks, all optional and all usable independently:
//
//   * MetricsRegistry (obs/metrics.hpp) — counters, gauges, and mergeable
//     histograms, sharded per thread so hot-path increments are wait-free;
//   * TraceCollector (obs/trace.hpp) — Chrome trace_event records, so a
//     sweep renders as a timeline in chrome://tracing / Perfetto;
//   * TelemetrySink (obs/telemetry.hpp) — structured JSONL event stream.
//
// Instrumentation hooks in hot paths (the engines' per-interaction
// recording) are wrapped in POPBEAN_OBS_HOOK, which discards its argument
// tokens entirely when the build sets POPBEAN_OBS_ENABLED=0 (CMake option
// POPBEAN_OBS=OFF) — a compile-time no-op, not a runtime branch. Cold-path
// structures (the registry, traces, telemetry) stay available in both modes
// so drivers and tools compile unchanged; an OFF build simply reports no
// engine-level counts.
#pragma once

#include <cstddef>

// Defined to 0 by -DPOPBEAN_OBS=OFF (via the popbean_util usage
// requirements); instrumentation is compiled in by default.
#ifndef POPBEAN_OBS_ENABLED
#define POPBEAN_OBS_ENABLED 1
#endif

// Hot-path hook: the wrapped statements are compiled verbatim when
// observability is enabled and removed before parsing when it is not.
#if POPBEAN_OBS_ENABLED
#define POPBEAN_OBS_HOOK(...) __VA_ARGS__
#else
#define POPBEAN_OBS_HOOK(...)
#endif

namespace popbean::obs {

inline constexpr bool kEnabled = POPBEAN_OBS_ENABLED != 0;

class MetricsRegistry;
class TraceCollector;
class TelemetrySink;

// Process-wide dense id of the calling thread, assigned on first use; the
// metrics shard index and the `tid` of trace events, so a Perfetto timeline
// lines up with the registry's per-thread view.
std::size_t current_thread_index() noexcept;

// The optional sinks a driver records into; null members are skipped. Plain
// pointers — the caller owns the sinks and must keep them alive for the
// duration of the instrumented run.
struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceCollector* trace = nullptr;
  TelemetrySink* telemetry = nullptr;

  bool any() const noexcept {
    return metrics != nullptr || trace != nullptr || telemetry != nullptr;
  }
};

}  // namespace popbean::obs
