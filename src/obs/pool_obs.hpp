// Bridges ThreadPool's task observer into a MetricsRegistry: queue latency
// and run time per task (log-binned from 1 µs to 1 h), a completion
// counter, and a queue-depth gauge sampled at each dequeue. The registry
// must outlive the pool (or a detach via set_task_observer(nullptr) +
// wait_idle()); the observer runs on worker threads, which is exactly the
// sharded-registry fast path.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"
#include "util/histogram.hpp"
#include "util/thread_pool.hpp"

namespace popbean::obs {

inline void attach_thread_pool(ThreadPool& pool, MetricsRegistry& registry) {
  const Histogram latency_shape = Histogram::logarithmic(1e-3, 3.6e6, 48);
  const CounterId tasks = registry.counter("pool.tasks_completed");
  const HistogramId queue_ms =
      registry.histogram("pool.task_queue_ms", latency_shape);
  const HistogramId run_ms =
      registry.histogram("pool.task_run_ms", latency_shape);
  const GaugeId depth = registry.gauge("pool.queue_depth");
  pool.set_task_observer([&registry, tasks, queue_ms, run_ms,
                          depth](const ThreadPool::TaskStats& stats) {
    using FpMillis = std::chrono::duration<double, std::milli>;
    registry.add(tasks);
    registry.observe(queue_ms,
                     FpMillis(stats.started - stats.enqueued).count());
    registry.observe(run_ms,
                     FpMillis(stats.finished - stats.started).count());
    registry.set(depth, static_cast<double>(stats.queue_depth));
  });
}

}  // namespace popbean::obs
