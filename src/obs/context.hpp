// Request-scoped trace context (DESIGN.md §13): the identity a job carries
// through the whole serve pipeline so every stage it touches — admission,
// queue, shard, voting replicas, retries, abandonment — lands on one
// causally-linked span tree.
//
// A TraceContext is a 64-bit trace id plus the id of the current span.
// Trace ids are minted once per request at codec decode (serve/codec.hpp's
// RequestReader) or, for directly-submitted jobs, at service admission; the
// id then rides the JobSpec across shard spills and retry attempts
// unchanged, is used as the Chrome async-event `id` (so Perfetto groups a
// job's spans on one track), keys histogram exemplars (obs/prom.hpp), and
// is echoed verbatim as `trace_id` in the NDJSON response — the join key
// between a response line, a trace file, and a metrics scrape.
//
// Minting is a process-global atomic counter fed through splitmix64: ids
// are unique per process, never zero (zero means "untraced"), and the
// sequence is deterministic per process run, so tests can assert exact
// span-tree shapes. Span ids come from a second counter; they only need
// uniqueness, not unguessability.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace popbean::obs {

// splitmix64 finalizer: bijective on 64-bit, so distinct counters always
// yield distinct trace ids.
constexpr std::uint64_t mix_trace_counter(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace detail {
inline std::atomic<std::uint64_t>& trace_counter() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}
inline std::atomic<std::uint64_t>& span_counter() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}
}  // namespace detail

// Mints a fresh nonzero trace id. Thread-safe, wait-free.
inline std::uint64_t mint_trace_id() noexcept {
  for (;;) {
    const std::uint64_t id = mix_trace_counter(
        detail::trace_counter().fetch_add(1, std::memory_order_relaxed) + 1);
    if (id != 0) return id;  // splitmix64 maps exactly one input to 0
  }
}

// Mints a fresh span id (small, monotone — safe to carry in double args).
inline std::uint64_t mint_span_id() noexcept {
  return detail::span_counter().fetch_add(1, std::memory_order_relaxed) + 1;
}

struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = untraced
  std::uint64_t span_id = 0;   // current (parent-to-be) span

  bool valid() const noexcept { return trace_id != 0; }

  // Context for a child span: same trace, fresh span id.
  TraceContext child() const noexcept {
    return TraceContext{trace_id, mint_span_id()};
  }
};

// Lower-case hex rendering of a trace id, the form used for Chrome async
// event ids, exemplar labels, and log lines ("0x" prefix included).
inline std::string trace_id_hex(std::uint64_t trace_id) {
  static constexpr char kDigits[] = "0123456789abcdef";
  char buffer[16];
  std::size_t len = 0;
  do {
    buffer[len++] = kDigits[trace_id & 0xf];
    trace_id >>= 4;
  } while (trace_id != 0);
  std::string out = "0x";
  while (len > 0) out.push_back(buffer[--len]);
  return out;
}

}  // namespace popbean::obs
