#include "obs/prom.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "obs/context.hpp"
#include "util/check.hpp"

namespace popbean::obs {

namespace {

bool name_char_ok(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

// Shortest round-trip-safe rendering; integral values print without a
// fractional part (Prometheus counters are conventionally integers).
std::string format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string format_le(double edge) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", edge);
  return buf;
}

void write_labels(std::ostream& os, const PromExposition::Labels& labels) {
  if (labels.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) os << ',';
    first = false;
    os << key << "=\"" << prom_escape_label(value) << '"';
  }
  os << '}';
}

}  // namespace

std::string prom_metric_name(std::string_view name) {
  std::string out = "popbean_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    out.push_back(name_char_ok(c) ? c : '_');
  }
  return out;
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

MetricsRegistry::Snapshot merge_snapshots(
    const std::vector<MetricsRegistry::Snapshot>& snaps) {
  MetricsRegistry::Snapshot out;
  // First-seen order; shards register the same names in the same order, so
  // this is simply the registration order of the first shard.
  for (const MetricsRegistry::Snapshot& snap : snaps) {
    for (const auto& [name, value] : snap.counters) {
      bool found = false;
      for (auto& [out_name, out_value] : out.counters) {
        if (out_name == name) {
          out_value += value;
          found = true;
          break;
        }
      }
      if (!found) out.counters.emplace_back(name, value);
    }
    for (const auto& [name, value] : snap.gauges) {
      bool found = false;
      for (auto& [out_name, out_value] : out.gauges) {
        if (out_name == name) {
          out_value = value;  // last snapshot wins; gauges don't sum
          found = true;
          break;
        }
      }
      if (!found) out.gauges.emplace_back(name, value);
    }
    for (const auto& [name, hist] : snap.histograms) {
      bool found = false;
      for (auto& [out_name, out_hist] : out.histograms) {
        if (out_name == name) {
          out_hist.merge(hist);
          found = true;
          break;
        }
      }
      if (!found) out.histograms.emplace_back(name, hist);
    }
  }
  return out;
}

PromExposition::Family& PromExposition::family(std::string name,
                                               std::string_view type) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = std::string(type);
    order_.push_back(std::move(name));
  } else {
    POPBEAN_CHECK_MSG(it->second.type == type,
                      "PromExposition: one family, two types");
  }
  return it->second;
}

void PromExposition::add(const MetricsRegistry::Snapshot& snap,
                         Labels labels) {
  for (const auto& [name, value] : snap.counters) {
    family(prom_metric_name(name) + "_total", "counter")
        .series.push_back({labels, static_cast<double>(value)});
  }
  for (const auto& [name, value] : snap.gauges) {
    family(prom_metric_name(name), "gauge").series.push_back({labels, value});
  }
  for (const auto& [name, hist] : snap.histograms) {
    Family& fam = family(prom_metric_name(name), "histogram");
    // Histogram families expand at write time: stash cumulative buckets as
    // series labelled with `le`, then _sum/_count under sentinel labels.
    std::uint64_t cumulative = 0;
    for (std::size_t bin = 0; bin < hist.bin_count(); ++bin) {
      cumulative += hist.count(bin);
      Labels bucket_labels = labels;
      bucket_labels.emplace_back("le", format_le(hist.bin_high(bin)));
      fam.series.push_back({bucket_labels, static_cast<double>(cumulative)});
      if (const Histogram::Exemplar* ex = hist.exemplar(bin)) {
        fam.exemplars.push_back(
            {format_le(hist.bin_high(bin)), labels, ex->value, ex->trace_id});
      }
    }
    Labels inf_labels = labels;
    inf_labels.emplace_back("le", "+Inf");
    fam.series.push_back(
        {inf_labels, static_cast<double>(hist.total())});
    Labels sum_labels = labels;
    sum_labels.emplace_back("__suffix", "_sum");
    fam.series.push_back({sum_labels, hist.sum()});
    Labels count_labels = labels;
    count_labels.emplace_back("__suffix", "_count");
    fam.series.push_back(
        {count_labels, static_cast<double>(hist.total())});
  }
}

void PromExposition::add_counter(std::string_view name, std::uint64_t value,
                                 Labels labels) {
  family(prom_metric_name(name) + "_total", "counter")
      .series.push_back({std::move(labels), static_cast<double>(value)});
}

void PromExposition::write(std::ostream& os) const {
  for (const std::string& name : order_) {
    const Family& fam = families_.at(name);
    os << "# TYPE " << name << ' ' << fam.type << '\n';
    for (const Series& series : fam.series) {
      // Histogram series carry their sample-name suffix as a sentinel
      // label; buckets (an `le` label) use the _bucket sample name.
      std::string sample_name = name;
      Labels labels;
      labels.reserve(series.labels.size());
      for (const auto& [key, value] : series.labels) {
        if (key == "__suffix") {
          sample_name += value;
        } else {
          if (key == "le" && fam.type == "histogram" &&
              sample_name == name) {
            sample_name += "_bucket";
          }
          labels.push_back({key, value});
        }
      }
      os << sample_name;
      write_labels(os, labels);
      os << ' ' << format_value(series.value) << '\n';
      // Bucket exemplar rides as a comment directly after its bucket line.
      if (fam.type == "histogram") {
        for (const BucketExemplar& ex : fam.exemplars) {
          bool same = !labels.empty() && labels.back().first == "le" &&
                      labels.back().second == ex.bucket_le;
          if (same) {
            Labels base(labels.begin(), labels.end() - 1);
            same = base == ex.labels;
          }
          if (!same) continue;
          os << "# exemplar " << sample_name;
          write_labels(os, labels);
          os << ' ' << format_value(ex.value) << ' '
             << trace_id_hex(ex.trace_id) << '\n';
        }
      }
    }
  }
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("prometheus parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

// Parses `name{k="v",…}` from `line` starting at 0; returns the position
// one past the series (start of the value field, after skipping spaces).
std::size_t parse_series(const std::string& line, std::size_t line_no,
                         std::string& name,
                         std::map<std::string, std::string>& labels) {
  std::size_t pos = 0;
  while (pos < line.size() && name_char_ok(line[pos])) ++pos;
  if (pos == 0) parse_fail(line_no, "expected metric name");
  name = line.substr(0, pos);
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::size_t key_start = pos;
      while (pos < line.size() && name_char_ok(line[pos])) ++pos;
      if (pos == key_start || pos >= line.size() || line[pos] != '=') {
        parse_fail(line_no, "malformed label name");
      }
      const std::string key = line.substr(key_start, pos - key_start);
      ++pos;  // '='
      if (pos >= line.size() || line[pos] != '"') {
        parse_fail(line_no, "label value must be quoted");
      }
      ++pos;  // opening quote
      std::string value;
      while (pos < line.size() && line[pos] != '"') {
        char c = line[pos];
        if (c == '\\') {
          ++pos;
          if (pos >= line.size()) parse_fail(line_no, "dangling escape");
          switch (line[pos]) {
            case '\\': c = '\\'; break;
            case '"': c = '"'; break;
            case 'n': c = '\n'; break;
            default: parse_fail(line_no, "unknown escape in label value");
          }
        }
        value.push_back(c);
        ++pos;
      }
      if (pos >= line.size()) parse_fail(line_no, "unterminated label value");
      ++pos;  // closing quote
      labels.emplace(key, value);
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size()) parse_fail(line_no, "unterminated label set");
    ++pos;  // '}'
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  return pos;
}

double parse_value(const std::string& token, std::size_t line_no) {
  if (token == "+Inf") return std::numeric_limits<double>::infinity();
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    if (consumed != token.size()) parse_fail(line_no, "trailing value bytes");
    return v;
  } catch (const std::invalid_argument&) {
    parse_fail(line_no, "malformed sample value '" + token + "'");
  } catch (const std::out_of_range&) {
    parse_fail(line_no, "sample value out of range");
  }
}

}  // namespace

PromDocument parse_prometheus(std::string_view text) {
  PromDocument doc;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_no;
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string line(text.substr(start, end - start));
    start = end + 1;
    if (line.empty()) {
      if (end == text.size()) break;
      continue;
    }

    if (line[0] == '#') {
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        if (space == std::string::npos) parse_fail(line_no, "malformed TYPE");
        doc.types[rest.substr(0, space)] = rest.substr(space + 1);
      } else if (line.rfind("# exemplar ", 0) == 0) {
        const std::string rest = line.substr(11);
        PromExemplar ex;
        std::size_t pos = parse_series(rest, line_no, ex.name, ex.labels);
        const std::size_t space = rest.find(' ', pos);
        if (space == std::string::npos) {
          parse_fail(line_no, "exemplar missing trace id");
        }
        ex.value = parse_value(rest.substr(pos, space - pos), line_no);
        const std::string hex = rest.substr(space + 1);
        if (hex.rfind("0x", 0) != 0 || hex.size() <= 2 || hex.size() > 18) {
          parse_fail(line_no, "malformed exemplar trace id");
        }
        ex.trace_id = std::stoull(hex.substr(2), nullptr, 16);
        doc.exemplars.push_back(std::move(ex));
      }
      // Other comments (e.g. # HELP) are skipped per the format spec.
      continue;
    }

    PromSample sample;
    const std::size_t pos = parse_series(line, line_no, sample.name,
                                         sample.labels);
    if (pos >= line.size()) parse_fail(line_no, "missing sample value");
    sample.value = parse_value(line.substr(pos), line_no);
    doc.samples.push_back(std::move(sample));
  }
  return doc;
}

}  // namespace popbean::obs
