#include "obs/telemetry.hpp"

#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/json.hpp"

namespace popbean::obs {

TelemetrySink::TelemetrySink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)),
      os_(*owned_),
      origin_(std::chrono::steady_clock::now()) {
  POPBEAN_CHECK_MSG(owned_->is_open(),
                    "TelemetrySink: cannot open " + path);
}

TelemetrySink::TelemetrySink(std::ostream& os)
    : os_(os), origin_(std::chrono::steady_clock::now()) {}

void TelemetrySink::record(std::string_view event,
                           const std::function<void(JsonWriter&)>& fields) {
  const auto now = std::chrono::steady_clock::now();
  const double t_ms =
      std::chrono::duration<double, std::milli>(now - origin_).count();
  std::lock_guard lock(mutex_);
  std::ostringstream buffer;
  JsonWriter json(buffer);
  json.begin_object();
  json.kv("event", event);
  json.kv("seq", seq_);
  json.kv("t_ms", t_ms);
  if (fields) fields(json);
  json.end_object();
  os_ << json_single_line(buffer.str()) << "\n";
  os_.flush();
  ++seq_;
}

std::uint64_t TelemetrySink::lines_written() const noexcept {
  std::lock_guard lock(mutex_);
  return seq_;
}

}  // namespace popbean::obs
