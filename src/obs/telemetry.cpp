#include "obs/telemetry.hpp"

#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/json.hpp"

namespace popbean::obs {
namespace {

// JsonWriter pretty-prints across lines; JSONL needs the object on one.
// Structural newlines are always followed by their indent run, and string
// values escape embedded newlines, so dropping '\n' + following spaces
// flattens the layout without touching any value.
std::string flatten(const std::string& pretty) {
  std::string line;
  line.reserve(pretty.size());
  for (std::size_t i = 0; i < pretty.size(); ++i) {
    if (pretty[i] == '\n') {
      while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
      continue;
    }
    line += pretty[i];
  }
  return line;
}

}  // namespace

TelemetrySink::TelemetrySink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)),
      os_(*owned_),
      origin_(std::chrono::steady_clock::now()) {
  POPBEAN_CHECK_MSG(owned_->is_open(),
                    "TelemetrySink: cannot open " + path);
}

TelemetrySink::TelemetrySink(std::ostream& os)
    : os_(os), origin_(std::chrono::steady_clock::now()) {}

void TelemetrySink::record(std::string_view event,
                           const std::function<void(JsonWriter&)>& fields) {
  const auto now = std::chrono::steady_clock::now();
  const double t_ms =
      std::chrono::duration<double, std::milli>(now - origin_).count();
  std::lock_guard lock(mutex_);
  std::ostringstream buffer;
  JsonWriter json(buffer);
  json.begin_object();
  json.kv("event", event);
  json.kv("seq", seq_);
  json.kv("t_ms", t_ms);
  if (fields) fields(json);
  json.end_object();
  os_ << flatten(buffer.str()) << "\n";
  os_.flush();
  ++seq_;
}

std::uint64_t TelemetrySink::lines_written() const noexcept {
  std::lock_guard lock(mutex_);
  return seq_;
}

}  // namespace popbean::obs
