// Bounded slow-request log (DESIGN.md §13): retains the top-k completed
// jobs by total latency (queue + run) with enough span breakdown to explain
// the outlier without opening the trace file — and the trace id to open it
// when that isn't enough.
//
// The log is a fixed-capacity min-heap keyed by latency: recording is O(log
// k) under one mutex and the capacity (default 32) bounds memory no matter
// how long the server runs. entries() returns a slowest-first copy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace popbean::obs {

class SlowLog {
 public:
  struct Entry {
    std::uint64_t trace_id = 0;
    std::string job_id;
    std::string outcome;
    std::size_t shard = 0;
    double queue_ms = 0.0;
    double run_ms = 0.0;
    std::uint64_t attempts = 0;

    double total_ms() const noexcept { return queue_ms + run_ms; }
  };

  explicit SlowLog(std::size_t capacity = 32)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  void record(Entry entry) {
    std::lock_guard lock(mutex_);
    if (heap_.size() < capacity_) {
      heap_.push_back(std::move(entry));
      std::push_heap(heap_.begin(), heap_.end(), faster);
      return;
    }
    // Full: only a request slower than the current fastest keeper displaces.
    if (entry.total_ms() <= heap_.front().total_ms()) return;
    std::pop_heap(heap_.begin(), heap_.end(), faster);
    heap_.back() = std::move(entry);
    std::push_heap(heap_.begin(), heap_.end(), faster);
  }

  // Slowest first.
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    {
      std::lock_guard lock(mutex_);
      out = heap_;
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.total_ms() > b.total_ms();
    });
    return out;
  }

  // Streams {"capacity": k, "entries": [{trace_id, id, outcome, shard,
  // queue_ms, run_ms, attempts, total_ms}…]} slowest first.
  void write_json(JsonWriter& json) const {
    const std::vector<Entry> sorted = entries();
    json.begin_object();
    json.kv("capacity", capacity_);
    json.key("entries");
    json.begin_array();
    for (const Entry& e : sorted) {
      json.begin_object();
      json.kv("trace_id", e.trace_id);
      json.kv("id", e.job_id);
      json.kv("outcome", e.outcome);
      json.kv("shard", e.shard);
      json.kv("queue_ms", e.queue_ms);
      json.kv("run_ms", e.run_ms);
      json.kv("attempts", e.attempts);
      json.kv("total_ms", e.total_ms());
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

 private:
  // Min-heap comparator: the *fastest* keeper sits at front, ready to be
  // displaced.
  static bool faster(const Entry& a, const Entry& b) noexcept {
    return a.total_ms() > b.total_ms();
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Entry> heap_;
};

}  // namespace popbean::obs
