// Engine-level instrumentation (DESIGN.md §8): a per-run probe counting
// interactions by reaction kind, attached to an engine via attach_probe()
// and flushed into a MetricsRegistry when the run finishes.
//
// The kind taxonomy follows the AVC reaction families (paper Fig. 1):
// averaging (line 11), sign-to-zero (12–14), shift-to-zero (15–17), and
// neutralization (18–19); protocols without a classify() method report
// their productive interactions as kOther. EngineProbe compiles to an empty
// struct with no-op methods when POPBEAN_OBS_ENABLED=0, so engines keep the
// member and the call sites vanish (see the zero-overhead test).
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <string_view>

#include "obs/obs.hpp"

namespace popbean::obs {

enum class ReactionKind : std::uint8_t {
  kNull = 0,          // no state change (engine-detected)
  kAveraging,         // two strong agents average their values
  kSignToZero,        // a zero-value agent adopts a sign/level
  kShiftToZero,       // drift toward the zero-value backstop states
  kNeutralization,    // opposite-sign weight-1 agents cancel
  kOther,             // productive, but the protocol has no classifier
};

inline constexpr std::size_t kReactionKindCount = 6;

constexpr std::string_view reaction_kind_name(ReactionKind kind) noexcept {
  switch (kind) {
    case ReactionKind::kNull: return "null";
    case ReactionKind::kAveraging: return "averaging";
    case ReactionKind::kSignToZero: return "sign_to_zero";
    case ReactionKind::kShiftToZero: return "shift_to_zero";
    case ReactionKind::kNeutralization: return "neutralization";
    case ReactionKind::kOther: return "other";
  }
  return "unknown";
}

// Classifies the *productive* interaction (a, b) — callers detect nulls
// themselves (engines already compute is_null on the hot path). Protocols
// opt in by providing classify(a, b) -> ReactionKind; anything else maps to
// kOther, which keeps this header free of protocol dependencies.
template <typename Protocol, typename State>
ReactionKind classify_interaction(const Protocol& protocol, State a, State b) {
  if constexpr (requires {
                  { protocol.classify(a, b) } -> std::same_as<ReactionKind>;
                }) {
    return protocol.classify(a, b);
  } else {
    (void)protocol;
    (void)a;
    (void)b;
    return ReactionKind::kOther;
  }
}

#if POPBEAN_OBS_ENABLED

// Plain tallies, bumped once per simulated interaction; single-threaded like
// the engine that owns the pointer. interactions counts every interaction
// including nulls; kinds[] partitions it by ReactionKind.
struct EngineProbe {
  std::uint64_t interactions = 0;
  std::uint64_t productive = 0;
  std::array<std::uint64_t, kReactionKindCount> kinds{};

  void record(ReactionKind kind) noexcept {
    ++interactions;
    if (kind != ReactionKind::kNull) ++productive;
    ++kinds[static_cast<std::size_t>(kind)];
  }

  // Bulk-records interactions known to be nulls (SkipEngine skips them in
  // O(1) rather than simulating each).
  void record_nulls(std::uint64_t count) noexcept {
    interactions += count;
    kinds[static_cast<std::size_t>(ReactionKind::kNull)] += count;
  }
};

#else

struct EngineProbe {
  void record(ReactionKind) noexcept {}
  void record_nulls(std::uint64_t) noexcept {}
};

#endif

class MetricsRegistry;

// Adds the probe's tallies to "<prefix>.interactions", "<prefix>.productive"
// and "<prefix>.reactions.<kind>". No-op when observability is compiled out.
void flush_engine_probe(MetricsRegistry& registry, const EngineProbe& probe,
                        std::string_view prefix = "engine");

}  // namespace popbean::obs
