// MetricsRegistry: counters, gauges, and mergeable histograms with
// thread-local sharding (DESIGN.md §8).
//
// Design: metric *names* are registered up front (register-or-lookup, under
// a mutex, bounded by the kMax* capacities) and return small ids; the hot
// recording paths then touch only the calling thread's shard:
//
//   * add(CounterId)   — a relaxed load/store on the shard's own cell. Each
//     shard has exactly one writer (its thread), so no RMW is needed: the
//     increment is wait-free and never contends.
//   * observe(HistogramId) — appends to the shard's private Histogram under
//     the shard's own mutex, which only a concurrent snapshot() ever shares.
//   * set(GaugeId)     — a relaxed atomic store on the registry (gauges are
//     last-write-wins and rare; sharding them would lose the semantics).
//
// snapshot() folds all shards: counter cells are summed with relaxed loads
// and histograms merged via Histogram::merge. A live snapshot is a
// consistent *lower bound* per metric (each cell read is atomic and
// monotone); for exact totals, establish happens-before with the writers
// first — join the threads or drain the pool (ThreadPool::wait_idle), after
// which every prior relaxed store is visible.
//
// Shards are owned by the registry and indexed by the process-wide thread
// index (obs.hpp), so a shard outlives its thread and nothing is lost when
// pool workers exit. Metric naming scheme: dot-separated
// "subsystem.metric[.detail]", e.g. "engine.reactions.averaging",
// "pool.task_run_ms", "sweep.cell_ms" (DESIGN.md §8 lists the registry).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/histogram.hpp"

namespace popbean {
class JsonWriter;
}

namespace popbean::obs {

// Typed metric handles; cheap to copy, valid for the registry's lifetime.
struct CounterId {
  std::uint32_t index = 0;
};
struct GaugeId {
  std::uint32_t index = 0;
};
struct HistogramId {
  std::uint32_t index = 0;
};

class MetricsRegistry {
 public:
  // Fixed capacities keep shards flat arrays (wait-free indexing, no
  // resize races); registration past a capacity is a programming error.
  static constexpr std::size_t kMaxCounters = 256;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 64;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Register-or-lookup by name. Registering an existing histogram name
  // requires the same bin edges.
  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  HistogramId histogram(std::string_view name, const Histogram& shape);

  void add(CounterId id, std::uint64_t delta = 1);
  void set(GaugeId id, double value);
  void observe(HistogramId id, double value);
  // As observe(), and stamps the bucket's exemplar with `trace_id` (0 =
  // untraced, no exemplar) — see Histogram::Exemplar.
  void observe(HistogramId id, double value, std::uint64_t trace_id);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram>> histograms;
  };

  // Aggregated view in registration order (deterministic for a fixed code
  // path). Safe to call while other threads record.
  Snapshot snapshot() const;

  // Streams the snapshot as {"counters": {...}, "gauges": {...},
  // "histograms": {name: Histogram::write_json…}}.
  void write_json(JsonWriter& json) const;

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    // Guards hists (growth and bin updates) against concurrent snapshots;
    // uncontended on the recording path.
    mutable std::mutex hist_mutex;
    std::vector<std::unique_ptr<Histogram>> hists;
  };

  Shard& shard_for_this_thread();

  const std::uint64_t generation_;  // process-unique, for shard caching
  mutable std::mutex mutex_;        // names, shapes, shard list
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<Histogram> hist_shapes_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::vector<std::unique_ptr<Shard>> shards_;  // index: thread index
};

}  // namespace popbean::obs
