// Structured run-telemetry sink (DESIGN.md §8): an append-only JSONL event
// stream, one self-contained object per line —
//
//   {"event": "cell_done", "seq": 12, "t_ms": 1042.7, …caller fields…}
//
// Lines are written whole under a mutex, so concurrent recorders interleave
// at line granularity and the file is always tail-readable (each prefix of
// the file is valid JSONL — useful for watching a long sweep live or
// post-mortem after a crash, which is the same property the checkpoint
// subsystem relies on).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace popbean {
class JsonWriter;
}

namespace popbean::obs {

class TelemetrySink {
 public:
  // Opens (truncates) the file at `path`.
  explicit TelemetrySink(const std::string& path);

  // Writes to a caller-owned stream (tests, stdout piping).
  explicit TelemetrySink(std::ostream& os);

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  // Appends one line: {"event": …, "seq": …, "t_ms": …, <extra fields>}.
  // `fields` is invoked inside the open object to add caller key/values via
  // JsonWriter::kv; pass nullptr for an event with no extra fields.
  void record(std::string_view event,
              const std::function<void(JsonWriter&)>& fields = nullptr);

  std::uint64_t lines_written() const noexcept;

 private:
  std::unique_ptr<std::ofstream> owned_;  // null when writing a borrowed stream
  std::ostream& os_;
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::uint64_t seq_ = 0;
};

}  // namespace popbean::obs
