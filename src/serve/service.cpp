#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/avc.hpp"
#include "faults/fault_model.hpp"
#include "faults/perturbed_engine.hpp"
#include "faults/schedule_model.hpp"
#include "harness/experiment.hpp"
#include "obs/context.hpp"
#include "obs/pool_obs.hpp"
#include "population/count_engine.hpp"
#include "protocols/four_state.hpp"
#include "protocols/three_state.hpp"
#include "recovery/divergence.hpp"
#include "serve/replicate.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "verify/builtin_invariants.hpp"
#include "zoo/registry.hpp"

namespace popbean::serve {

namespace {

using FpMillis = std::chrono::duration<double, std::milli>;

enum class AttemptKind { kOk, kFailed, kTimeout, kShutdown };

// Vote evidence carried out of one attempt (zeroed for unvoted attempts and
// chaos-failed attempts that never ran replicas).
struct VoteSummary {
  bool voted = false;
  std::uint32_t replicas_run = 0;  // slots the executor was configured with
  std::uint32_t divergent = 0;
  std::uint32_t abandoned = 0;
  bool no_majority = false;
  bool divergence = false;  // any minority, or no majority at all
  // First minority replica, for telemetry and replay capture.
  bool has_minority = false;
  std::uint32_t minority_replica = 0;
  std::uint64_t minority_stream = 0;
  bool minority_corrupt = false;
  std::string capture_header;  // non-empty when a capture pair was written
  std::string capture_log;
};

struct Attempt {
  AttemptKind kind = AttemptKind::kFailed;
  JobResult result;
  std::string error;
  VoteSummary vote;
};

// Everything one attempt needs beyond the spec: the ladder-adjusted
// replication counts, the chaos corruption target, and the capture budget.
struct AttemptPlan {
  std::uint32_t replicates = 1;
  std::uint64_t max_interactions = 0;
  std::uint32_t vote_replicas = 1;
  int corrupt_replica = -1;  // -1 none, -2 every replica, else one index
  double corrupt_rate = 0.0;
  std::uint64_t attempt_index = 0;
  std::uint64_t poll_interval = 1024;
  std::uint64_t sequence = 0;
  std::string capture_dir;  // empty = captures off
  bool capture_allowed = false;
  // Request-scoped tracing (nullptr/0 = untraced): replica spans record
  // onto the job's async track.
  obs::TraceCollector* trace = nullptr;
  std::uint64_t trace_id = 0;
};

// Runs one voting replica: all statistical replicates on their own RNG
// streams (replicate.hpp's replica_stream — replica 0 reuses the legacy
// a·1000003 + r layout). Returns nullopt when interrupted (deadline /
// abandon / cancel), which the vote treats as a non-matching slot.
template <typename P, typename StopFn>
std::optional<ReplicaPayload> run_replica(
    const P& protocol, const JobSpec& spec, const Counts& initial,
    const MajorityInstance& instance, const AttemptPlan& plan, bool corrupt,
    std::uint32_t replica, const StopFn& should_stop) {
  // Per-replica span on the job's async track: replica index plus the RNG
  // stream of its first replicate (hex string args — 64-bit streams exceed
  // double precision). Recorded on every exit, including interruption.
  const auto replica_start = obs::TraceCollector::Clock::now();
  const auto record_replica = [&](bool interrupted) {
    if (plan.trace == nullptr || plan.trace_id == 0) return;
    plan.trace->async_span(
        "replica", "serve", plan.trace_id, replica_start,
        obs::TraceCollector::Clock::now(),
        {{"replica", static_cast<double>(replica)},
         {"attempt", static_cast<double>(plan.attempt_index)},
         {"corrupt", corrupt ? 1.0 : 0.0},
         {"interrupted", interrupted ? 1.0 : 0.0}},
        {{"stream0", obs::trace_id_hex(replica_stream(plan.attempt_index, 0,
                                                      replica))}});
  };
  ReplicaPayload payload;
  payload.corrupt = corrupt;
  double time_sum = 0.0;
  for (std::uint32_t r = 0; r < plan.replicates; ++r) {
    const std::uint64_t stream =
        replica_stream(plan.attempt_index, r, replica);
    Xoshiro256ss rng(spec.seed, stream);
    std::optional<RunResult> result;
    if (corrupt) {
      auto engine = faults::make_perturbed(
          CountEngine<P>(protocol, initial),
          faults::TransientCorruption(plan.corrupt_rate),
          faults::UniformSchedule{}, rng);
      result = run_to_convergence_interruptible(
          engine, rng, plan.max_interactions, should_stop, plan.poll_interval);
    } else {
      CountEngine<P> engine(protocol, initial);
      result = run_to_convergence_interruptible(
          engine, rng, plan.max_interactions, should_stop, plan.poll_interval);
    }
    if (!result) {
      record_replica(true);
      return std::nullopt;
    }
    payload.streams.push_back(stream);
    append_decision(payload.bytes, *result);
    ++payload.result.replicates_run;
    switch (result->status) {
      case RunStatus::kConverged:
        ++payload.result.converged;
        time_sum += result->parallel_time;
        if (result->decided == instance.correct_output()) {
          ++payload.result.correct;
        } else {
          ++payload.result.wrong;
        }
        break;
      case RunStatus::kStepLimit:
        ++payload.result.step_limit;
        break;
      case RunStatus::kAbsorbing:
        ++payload.result.absorbing;
        break;
    }
  }
  if (payload.result.converged > 0) {
    payload.result.mean_parallel_time =
        time_sum / static_cast<double>(payload.result.converged);
  }
  record_replica(false);
  return payload;
}

// Runs one attempt: k voting replicas sequentially, then a vote_memory-
// style majority over the canonical decision payloads. k = 1 degenerates to
// exactly the pre-voting single-run path (same streams, same result).
template <typename P, typename StopFn>
Attempt run_attempt(const P& protocol,
                    const verify::LinearInvariant& invariant,
                    const JobSpec& spec, const AttemptPlan& plan,
                    const StopFn& should_stop,
                    const std::atomic<bool>& cancel) {
  Attempt attempt;
  const MajorityInstance instance = make_instance(spec.n, spec.epsilon);
  const Counts initial = majority_instance_with_margin(
      protocol, instance.n, instance.margin, instance.majority);

  ReplicatedExecutor executor(plan.vote_replicas);
  std::vector<std::optional<ReplicaPayload>> slots;
  const VoteOutcome vote = executor.execute(slots, [&](std::uint32_t j) {
    const bool corrupt =
        plan.corrupt_replica == -2 ||
        (plan.corrupt_replica >= 0 &&
         static_cast<std::uint32_t>(plan.corrupt_replica) == j);
    return run_replica(protocol, spec, initial, instance, plan, corrupt, j,
                       should_stop);
  });

  attempt.vote.voted = vote.voted;
  attempt.vote.replicas_run = plan.vote_replicas;
  attempt.vote.divergent = vote.divergent;
  attempt.vote.abandoned = vote.abandoned;

  if (!vote.majority_found) {
    if (vote.abandoned > 0) {
      // Killed replicas, not disagreeing ones — the job ran out of time (or
      // the service is shutting down); the family is not to blame.
      attempt.kind = cancel.load(std::memory_order_relaxed)
                         ? AttemptKind::kShutdown
                         : AttemptKind::kTimeout;
      return attempt;
    }
    // Every replica finished and no payload reached a majority: the
    // strongest possible divergence evidence.
    attempt.vote.no_majority = true;
    attempt.vote.divergence = true;
    attempt.kind = AttemptKind::kFailed;
    attempt.error = "no_majority";
    return attempt;
  }

  const ReplicaPayload& winner = *slots[vote.winner];
  if (vote.divergent > 0) {
    attempt.vote.divergence = true;
    attempt.vote.has_minority = true;
    const std::uint32_t loser = vote.minority.front();
    const ReplicaPayload& minority = *slots[loser];
    const std::uint32_t group =
        first_diverging_replicate(winner, minority).value_or(0);
    const std::size_t idx =
        std::min<std::size_t>(group, minority.streams.size() - 1);
    attempt.vote.minority_replica = loser;
    attempt.vote.minority_stream = minority.streams[idx];
    attempt.vote.minority_corrupt = minority.corrupt;
    // Freeze the outvoted run for popbean-replay. Only corrupt replicas are
    // capturable (§7 recording needs an active fault model); a clean-vs-
    // clean divergence would be a real service bug, and telemetry still
    // carries its (seed, stream) pair.
    if (plan.capture_allowed && minority.corrupt &&
        !plan.capture_dir.empty()) {
      recovery::RecordSpec record;
      record.protocol_name = spec.protocol;
      record.seed = spec.seed;
      record.stream = attempt.vote.minority_stream;
      record.max_interactions = plan.max_interactions;
      record.rate = plan.corrupt_rate;
      record.epsilon = spec.epsilon;
      const std::string tag = "div-" + spec.id + "-seq" +
                              std::to_string(plan.sequence) + "-a" +
                              std::to_string(plan.attempt_index) + "-r" +
                              std::to_string(loser);
      if (const auto capture = recovery::record_divergent_replica(
              protocol, invariant, initial, plan.corrupt_rate, record,
              plan.capture_dir, tag)) {
        attempt.vote.capture_header = capture->header_path;
        attempt.vote.capture_log = capture->log_path;
      }
    }
  }

  attempt.kind = AttemptKind::kOk;
  attempt.result = winner.result;
  return attempt;
}

template <typename StopFn>
Attempt dispatch_attempt(const JobSpec& spec, const AttemptPlan& plan,
                         const StopFn& should_stop,
                         const std::atomic<bool>& cancel) {
  if (spec.protocol == "four-state") {
    return run_attempt(FourStateProtocol{},
                       verify::four_state_difference_invariant(), spec, plan,
                       should_stop, cancel);
  }
  if (spec.protocol == "three-state") {
    const ThreeStateProtocol protocol{};
    return run_attempt(protocol,
                       recovery::trivial_invariant(protocol.num_states()),
                       spec, plan, should_stop, cancel);
  }
  if (zoo::is_zoo_spec(spec.protocol)) {
    // Shared immutable runtimes (zoo/registry.hpp) — safe across workers.
    // An unknown member throws; execute() surfaces it as a failed job.
    return zoo::with_zoo_runtime(spec.protocol, [&](const auto& runtime) {
      return run_attempt(runtime,
                         recovery::trivial_invariant(runtime.num_states()),
                         spec, plan, should_stop, cancel);
    });
  }
  POPBEAN_CHECK_MSG(spec.protocol == "avc",
                    "JobService: unknown protocol " + spec.protocol);
  const avc::AvcProtocol protocol(spec.m, spec.d);
  return run_attempt(protocol, verify::avc_sum_invariant(protocol), spec,
                     plan, should_stop, cancel);
}

// Config/sink validation runs while the *first* members initialize, before
// the thread pool and watchdog threads exist — throwing from the constructor
// body after those threads start would std::terminate on the joinable
// std::thread member during unwinding.
ServiceConfig validated(ServiceConfig config) {
  POPBEAN_CHECK_MSG(
      config.vote_replicas >= 1 && config.vote_replicas % 2 == 1,
      "JobService: vote_replicas must be odd (even replica counts can tie "
      "and a tie has no majority)");
  return config;
}

JobService::ResponseFn validated(JobService::ResponseFn on_response) {
  POPBEAN_CHECK_MSG(on_response != nullptr,
                    "JobService: a response sink is required");
  return on_response;
}

}  // namespace

JobService::MetricIds JobService::register_metrics(
    obs::MetricsRegistry& registry) {
  const Histogram latency_shape = Histogram::logarithmic(1e-3, 3.6e6, 48);
  MetricIds ids;
  ids.accepted = registry.counter("serve.accepted");
  ids.rejected = registry.counter("serve.rejected");
  ids.invalid = registry.counter("serve.invalid");
  ids.completed = registry.counter("serve.completed");
  ids.truncated = registry.counter("serve.truncated");
  ids.failed = registry.counter("serve.failed");
  ids.timeouts = registry.counter("serve.timeouts");
  ids.retries = registry.counter("serve.retries");
  ids.shed = registry.counter("serve.shed");
  ids.circuit_open = registry.counter("serve.circuit_open");
  ids.watchdog_abandons = registry.counter("serve.watchdog_abandons");
  ids.voted = registry.counter("serve.vote.voted");
  ids.divergences = registry.counter("serve.vote.divergences");
  ids.no_majority = registry.counter("serve.vote.no_majority");
  ids.quarantine_entered = registry.counter("serve.vote.quarantine_entered");
  ids.quarantine_recovered =
      registry.counter("serve.vote.quarantine_recovered");
  ids.quarantined_jobs = registry.counter("serve.vote.quarantined_jobs");
  ids.captures = registry.counter("serve.vote.captures");
  ids.live = registry.gauge("serve.live");
  ids.draining = registry.gauge("serve.draining");
  ids.queue_depth = registry.gauge("serve.queue_depth");
  ids.queue_capacity = registry.gauge("serve.queue_capacity");
  ids.inflight = registry.gauge("serve.inflight");
  ids.degradation_level = registry.gauge("serve.degradation_level");
  ids.breakers_open = registry.gauge("serve.breakers_open");
  ids.overloaded = registry.gauge("serve.overloaded");
  ids.quarantined_families = registry.gauge("serve.vote.quarantined_families");
  ids.queue_ms = registry.histogram("serve.queue_ms", latency_shape);
  ids.run_ms = registry.histogram("serve.run_ms", latency_shape);
  return ids;
}

JobService::JobService(ServiceConfig config, ResponseFn on_response)
    : config_(validated(std::move(config))),
      on_response_(validated(std::move(on_response))),
      owned_metrics_(config_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? *config_.metrics
                                          : *owned_metrics_),
      ids_(register_metrics(metrics_)),
      queue_(config_.admission),
      breakers_(config_.breaker),
      overload_gauge_(config_.degradation.high_watermark,
                      config_.degradation.low_watermark),
      pool_(config_.threads),
      watchdog_([this] { watchdog_loop(); }) {
  // Observer attached before any submit — the pool's attach-then-submit
  // contract (thread_pool.hpp).
  obs::attach_thread_pool(pool_, metrics_);
  metrics_.set(ids_.live, 1.0);
  metrics_.set(ids_.queue_capacity,
               static_cast<double>(config_.admission.capacity));
}

JobService::~JobService() {
  drain(config_.drain_deadline);
  {
    std::lock_guard lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  pool_.shutdown();
  metrics_.set(ids_.live, 0.0);
}

void JobService::emit(JobResponse response) {
  response.shard = config_.shard_index;
  std::lock_guard lock(response_mutex_);
  on_response_(response);
}

JobResponse JobService::overloaded_response(std::string id, std::string reason,
                                            std::uint64_t trace_id,
                                            std::uint64_t origin) const {
  JobResponse response;
  response.id = std::move(id);
  response.outcome = JobOutcome::kOverloaded;
  response.error = std::move(reason);
  response.trace_id = trace_id;
  response.origin = origin;
  return response;
}

void JobService::trace_job_end(std::uint64_t trace_id, const char* outcome,
                               const char* reason) {
  if (config_.trace == nullptr || trace_id == 0) return;
  obs::TraceCollector::StringArgs sargs{{"outcome", outcome}};
  if (reason != nullptr) sargs.emplace_back("reason", reason);
  config_.trace->async_end("job", "serve", trace_id, {}, std::move(sargs));
}

bool JobService::submit(JobSpec spec) {
  return !submit_internal(std::move(spec), true).has_value();
}

std::optional<std::string> JobService::try_submit(JobSpec spec) {
  return submit_internal(std::move(spec), false);
}

std::optional<std::string> JobService::submit_internal(JobSpec spec,
                                                       bool emit_rejection) {
  const auto now = Clock::now();
  // Direct submits (tests, tools skipping the codec) get their trace id
  // minted here so admission is never the untraced part of the tree.
  if (config_.trace != nullptr && spec.trace_id == 0) {
    spec.trace_id = obs::mint_trace_id();
  }
  std::vector<JobResponse> to_emit;
  std::optional<std::string> rejection;
  {
    std::lock_guard lock(mutex_);
    if (draining_) {
      metrics_.add(ids_.rejected);
      rejection = "draining";
      if (config_.trace != nullptr && spec.trace_id != 0) {
        config_.trace->async_instant("reject", "serve", spec.trace_id, {},
                                     {{"reason", *rejection}});
      }
      if (emit_rejection) {
        to_emit.push_back(overloaded_response(spec.id, *rejection,
                                              spec.trace_id, spec.origin));
      }
    } else {
      QueuedJob job;
      job.spec = std::move(spec);
      const std::chrono::milliseconds budget =
          job.spec.deadline.count() != 0 ? job.spec.deadline
                                         : config_.default_deadline;
      job.deadline = budget.count() != 0 ? Deadline::after(budget, now)
                                         : Deadline::unlimited();
      job.admitted = now;
      job.sequence = next_sequence_++;
      const std::string id = job.spec.id;  // push moves the job
      const std::string protocol = job.spec.protocol;
      const std::uint64_t trace_id = job.spec.trace_id;
      const std::uint64_t origin = job.spec.origin;
      AdmitResult result = queue_.push(std::move(job));
      if (!result.admitted) {
        metrics_.add(ids_.rejected);
        rejection = result.reason;
        if (config_.trace != nullptr && trace_id != 0) {
          config_.trace->async_instant("reject", "serve", trace_id, {},
                                       {{"reason", result.reason}});
        }
        if (emit_rejection) {
          to_emit.push_back(
              overloaded_response(id, result.reason, trace_id, origin));
        }
      } else {
        metrics_.add(ids_.accepted);
        // The root "job" span opens at admission; exactly one terminal site
        // (run_job, shed, eviction, drain flush) closes it.
        if (config_.trace != nullptr && trace_id != 0) {
          config_.trace->async_begin(
              "job", "serve", trace_id,
              {{"shard", static_cast<double>(config_.shard_index)}},
              {{"job", id}, {"protocol", protocol}});
        }
        if (result.evicted.has_value()) {
          metrics_.add(ids_.shed);
          trace_job_end(result.evicted->spec.trace_id, "overloaded",
                        "shed_deadline");
          to_emit.push_back(overloaded_response(result.evicted->spec.id,
                                                "shed_deadline",
                                                result.evicted->spec.trace_id,
                                                result.evicted->spec.origin));
        }
        for (QueuedJob& victim : update_overload_locked(now)) {
          metrics_.add(ids_.shed);
          trace_job_end(victim.spec.trace_id, "overloaded", "shed_overload");
          to_emit.push_back(overloaded_response(victim.spec.id,
                                                "shed_overload",
                                                victim.spec.trace_id,
                                                victim.spec.origin));
        }
        pump_locked();
      }
    }
    update_gauges_locked();
  }
  for (JobResponse& response : to_emit) emit(std::move(response));
  return rejection;
}

void JobService::note_invalid() { metrics_.add(ids_.invalid); }

void JobService::pump_locked() {
  while (!cancel_.load(std::memory_order_relaxed) &&
         running_ < pool_.thread_count()) {
    std::optional<QueuedJob> job = queue_.pop();
    if (!job.has_value()) break;
    ++running_;
    auto ctx = std::make_shared<ActiveJob>();
    ctx->deadline = job->deadline;
    ctx->id = job->spec.id;
    ctx->trace_id = job->spec.trace_id;
    active_.push_back(ctx);
    // Boxed so the lambda stays copyable (std::function requirement).
    auto boxed = std::make_shared<QueuedJob>(std::move(*job));
    pool_.submit(boxed->spec.id,
                 [this, boxed, ctx] { run_job(*boxed, *ctx); });
  }
}

std::vector<QueuedJob> JobService::update_overload_locked(
    Clock::time_point now) {
  std::vector<QueuedJob> shed;
  const double occupancy = queue_.occupancy();
  if (occupancy >= config_.degradation.high_watermark) {
    if (!overload_since_.has_value()) overload_since_ = now;
    const auto dwell = now - *overload_since_;
    int level = 1;
    if (dwell >= config_.degradation.escalate_after) level = 2;
    if (dwell >= 2 * config_.degradation.escalate_after) level = 3;
    level_ = std::max(level_, level);
    if (level_ >= 3) {
      while (queue_.occupancy() > config_.degradation.high_watermark) {
        std::optional<QueuedJob> victim = queue_.shed_lowest();
        if (!victim.has_value()) break;
        shed.push_back(std::move(*victim));
      }
    }
  } else if (occupancy <= config_.degradation.low_watermark) {
    // Hysteresis: between the watermarks the current rung holds.
    overload_since_.reset();
    level_ = 0;
  }
  return shed;
}

void JobService::update_gauges_locked() {
  metrics_.set(ids_.queue_depth, static_cast<double>(queue_.size()));
  metrics_.set(ids_.inflight, static_cast<double>(running_));
  metrics_.set(ids_.degradation_level, static_cast<double>(level_));
  metrics_.set(ids_.breakers_open,
               static_cast<double>(breakers_.open_count()));
  metrics_.set(ids_.overloaded,
               overload_gauge_.update(queue_.occupancy()) ? 1.0 : 0.0);
  metrics_.set(ids_.quarantined_families,
               static_cast<double>(breakers_.quarantined_count()));
}

void JobService::run_job(const QueuedJob& job, ActiveJob& ctx) {
  JobResponse response = execute(job, ctx);
  trace_job_end(job.spec.trace_id, to_string(response.outcome),
                response.error.empty() ? nullptr : response.error.c_str());
  if (config_.slow_log != nullptr) {
    obs::SlowLog::Entry entry;
    entry.trace_id = job.spec.trace_id;
    entry.job_id = job.spec.id;
    entry.outcome = to_string(response.outcome);
    entry.shard = config_.shard_index;
    entry.queue_ms = response.queue_ms;
    entry.run_ms = response.run_ms;
    entry.attempts = response.attempts;
    config_.slow_log->record(std::move(entry));
  }
  emit(std::move(response));
  std::vector<JobResponse> to_emit;
  {
    std::lock_guard lock(mutex_);
    POPBEAN_CHECK(running_ > 0);
    --running_;
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&ctx](const std::shared_ptr<ActiveJob>& a) {
                                   return a.get() == &ctx;
                                 }),
                  active_.end());
    for (QueuedJob& victim : update_overload_locked(Clock::now())) {
      metrics_.add(ids_.shed);
      trace_job_end(victim.spec.trace_id, "overloaded", "shed_overload");
      to_emit.push_back(overloaded_response(victim.spec.id, "shed_overload",
                                            victim.spec.trace_id,
                                            victim.spec.origin));
    }
    pump_locked();
    update_gauges_locked();
    if (running_ == 0 && queue_.empty()) idle_cv_.notify_all();
  }
  for (JobResponse& shed_response : to_emit) emit(std::move(shed_response));
}

JobResponse JobService::execute(const QueuedJob& job, ActiveJob& ctx) {
  const auto start = Clock::now();
  obs::TraceCollector* const trace = config_.trace;
  const std::uint64_t trace_id = job.spec.trace_id;
  const bool traced = trace != nullptr && trace_id != 0;
  JobResponse response;
  response.id = job.spec.id;
  response.trace_id = trace_id;
  response.origin = job.spec.origin;
  response.queue_ms = FpMillis(start - job.admitted).count();
  metrics_.observe(ids_.queue_ms, response.queue_ms, trace_id);
  // The queue wait is only measurable once the job pops — recorded
  // retrospectively over [admitted, start].
  if (traced) {
    trace->async_span("queue", "serve", trace_id, job.admitted, start);
  }

  if (job.deadline.expired(start)) {
    // Expired while queued: the job never ran, so the breaker learns
    // nothing about the protocol from it.
    metrics_.add(ids_.timeouts);
    response.outcome = JobOutcome::kTimeout;
    response.error = "deadline expired in queue";
    return response;
  }
  {
    std::lock_guard lock(mutex_);
    CircuitBreaker& breaker = breakers_.for_key(job.spec.protocol);
    if (!breaker.allow(start)) {
      metrics_.add(ids_.circuit_open);
      metrics_.add(ids_.failed);
      update_gauges_locked();
      if (traced) {
        trace->async_instant("circuit_open", "serve", trace_id);
      }
      response.outcome = JobOutcome::kFailed;
      response.error = "circuit_open";
      return response;
    }
    update_gauges_locked();  // allow() may have moved open → half-open
  }

  // Snapshot the degradation ladder for this job: voting is the first
  // rung's sacrifice (k → 3 → 1), then statistical replication, then the
  // interaction cap.
  std::uint32_t vote_k = job.spec.vote_replicas != 0 ? job.spec.vote_replicas
                                                     : config_.vote_replicas;
  std::uint32_t replicates = job.spec.replicates;
  std::uint64_t max_interactions = job.spec.effective_max_interactions();
  {
    std::lock_guard lock(mutex_);
    if (level_ >= 1) {
      if (replicates > 1) {
        replicates = 1;
        response.degraded = true;
      }
      if (vote_k > 3) {
        vote_k = 3;
        response.degraded = true;
      }
    }
    if (level_ >= 2) {
      if (config_.degradation.truncate_interactions < max_interactions) {
        max_interactions = config_.degradation.truncate_interactions;
        response.degraded = true;
      }
      if (vote_k > 1) {
        vote_k = 1;
        response.degraded = true;
      }
    }
    if (vote_k > 1) {
      CircuitBreaker& breaker = breakers_.for_key(job.spec.protocol);
      if (!breaker.vote_allowed(start)) {
        // Quarantined family: execute unvoted, label the response so the
        // client knows this answer carries no replication guarantee.
        vote_k = 1;
        response.quarantined = true;
        metrics_.add(ids_.quarantined_jobs);
      }
      update_gauges_locked();  // vote_allowed may have started probation
    }
  }
  const bool capped = max_interactions < job.spec.effective_max_interactions();

  DecorrelatedJitterBackoff backoff(config_.backoff,
                                    Xoshiro256ss(config_.seed, job.sequence));
  const auto should_stop = [this, &ctx, &job] {
    return cancel_.load(std::memory_order_relaxed) ||
           ctx.abandon.load(std::memory_order_relaxed) ||
           job.deadline.expired();
  };

  Attempt attempt;
  for (std::size_t attempt_index = 0;; ++attempt_index) {
    ++response.attempts;
    const auto attempt_start = Clock::now();
    ChaosAction action = ChaosAction::kNone;
    if (config_.chaos) {
      action = config_.chaos(ChaosContext{job.spec, attempt_index,
                                          job.sequence});
    }
    if (action == ChaosAction::kSlow) {
      // A wedged worker: deliberately does NOT poll the job deadline, so
      // only the watchdog's abandon flag or a drain cancel unsticks it.
      const auto stall_until = Clock::now() + config_.chaos_slow;
      while (Clock::now() < stall_until &&
             !cancel_.load(std::memory_order_relaxed) &&
             !ctx.abandon.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (action == ChaosAction::kFail) {
      attempt = Attempt{AttemptKind::kFailed, JobResult{}, "chaos_fail", {}};
    } else {
      AttemptPlan plan;
      plan.replicates = replicates;
      plan.max_interactions = max_interactions;
      plan.vote_replicas = vote_k;
      if (action == ChaosAction::kCorrupt) {
        // Under voting, corrupt the last replica only — a minority of one
        // the vote must outlive; unvoted jobs corrupt their single replica
        // exactly as the pre-voting service did.
        plan.corrupt_replica = vote_k > 1 ? static_cast<int>(vote_k - 1) : 0;
      } else if (action == ChaosAction::kCorruptAll) {
        plan.corrupt_replica = -2;
      }
      plan.corrupt_rate = config_.chaos_corrupt_rate;
      plan.attempt_index = static_cast<std::uint64_t>(attempt_index);
      plan.poll_interval = config_.stop_check_interval;
      plan.sequence = job.sequence;
      plan.trace = trace;
      plan.trace_id = trace_id;
      plan.capture_dir = config_.vote_capture_dir;
      if (!plan.capture_dir.empty()) {
        std::lock_guard lock(mutex_);
        // Soft limit: concurrent divergences may overshoot by the worker
        // count; the point is bounding disk, not exact accounting.
        plan.capture_allowed =
            captures_written_ < config_.vote_capture_limit;
      }
      try {
        attempt = dispatch_attempt(job.spec, plan, should_stop, cancel_);
      } catch (const std::exception& e) {
        attempt = Attempt{AttemptKind::kFailed, JobResult{}, e.what(), {}};
      }
    }

    if (traced) {
      trace->async_span(
          "attempt", "serve", trace_id, attempt_start, Clock::now(),
          {{"attempt", static_cast<double>(attempt_index)},
           {"replicas", static_cast<double>(vote_k)}},
          {{"kind", attempt.kind == AttemptKind::kOk        ? "ok"
                    : attempt.kind == AttemptKind::kTimeout ? "timeout"
                    : attempt.kind == AttemptKind::kShutdown
                        ? "shutdown"
                        : "failed"}});
      if (attempt.vote.voted) {
        trace->async_instant(
            "vote", "serve", trace_id,
            {{"replicas", static_cast<double>(attempt.vote.replicas_run)},
             {"divergent", static_cast<double>(attempt.vote.divergent)},
             {"no_majority", attempt.vote.no_majority ? 1.0 : 0.0}});
      }
    }

    // Vote bookkeeping per attempt (retried attempts count too — quarantine
    // evidence must not vanish just because a retry later succeeded).
    if (attempt.vote.voted) {
      const auto now = Clock::now();
      bool entered = false;
      bool recovered = false;
      {
        std::lock_guard lock(mutex_);
        CircuitBreaker& breaker = breakers_.for_key(job.spec.protocol);
        metrics_.add(ids_.voted);
        if (attempt.vote.divergence) {
          metrics_.add(ids_.divergences);
          metrics_.add(
              metrics_.counter("serve.vote.divergence." + job.spec.protocol));
          if (attempt.vote.no_majority) metrics_.add(ids_.no_majority);
          entered = breaker.record_divergence(now);
          if (entered) metrics_.add(ids_.quarantine_entered);
          if (!attempt.vote.capture_header.empty()) {
            ++captures_written_;
            metrics_.add(ids_.captures);
          }
        } else if (attempt.vote.abandoned == 0) {
          recovered = breaker.record_clean_vote();
          if (recovered) metrics_.add(ids_.quarantine_recovered);
        }
        update_gauges_locked();
      }
      if (attempt.vote.divergence && config_.telemetry != nullptr) {
        const VoteSummary& vote = attempt.vote;
        config_.telemetry->record("vote_divergence", [&](JsonWriter& json) {
          json.kv("job", job.spec.id);
          json.kv("family", job.spec.protocol);
          json.kv("attempt", static_cast<std::uint64_t>(attempt_index));
          json.kv("replicas", static_cast<std::uint64_t>(vote.replicas_run));
          json.kv("divergent", static_cast<std::uint64_t>(vote.divergent));
          json.kv("no_majority", vote.no_majority);
          json.kv("seed", job.spec.seed);
          if (vote.has_minority) {
            json.kv("minority_replica",
                    static_cast<std::uint64_t>(vote.minority_replica));
            json.kv("stream", vote.minority_stream);
            json.kv("minority_corrupt", vote.minority_corrupt);
          }
          if (!vote.capture_header.empty()) {
            json.kv("capture_header", vote.capture_header);
            json.kv("capture_log", vote.capture_log);
          }
          json.kv("quarantined", entered);
        });
      }
    }

    if (attempt.kind != AttemptKind::kFailed) break;
    const bool may_retry = attempt_index < config_.max_retries &&
                           !job.deadline.expired() &&
                           !cancel_.load(std::memory_order_relaxed) &&
                           !ctx.abandon.load(std::memory_order_relaxed);
    if (!may_retry) break;
    metrics_.add(ids_.retries);
    const auto delay = std::min<Clock::duration>(backoff.next(),
                                                 job.deadline.remaining());
    const auto backoff_start = Clock::now();
    sleep_interruptible(delay, ctx);
    if (traced) {
      trace->async_span("backoff", "serve", trace_id, backoff_start,
                        Clock::now(),
                        {{"attempt", static_cast<double>(attempt_index)}});
    }
  }

  const auto finish = Clock::now();
  response.run_ms = FpMillis(finish - start).count();
  metrics_.observe(ids_.run_ms, response.run_ms, trace_id);
  response.replicas_used =
      attempt.vote.replicas_run > 0 ? attempt.vote.replicas_run : vote_k;
  response.voted = attempt.vote.voted;
  response.divergent = attempt.vote.divergent;

  std::lock_guard lock(mutex_);
  CircuitBreaker& breaker = breakers_.for_key(job.spec.protocol);
  switch (attempt.kind) {
    case AttemptKind::kOk:
      response.outcome = capped ? JobOutcome::kTruncated : JobOutcome::kDone;
      response.result = attempt.result;
      breaker.record_success(finish);
      metrics_.add(ids_.completed);
      if (capped) metrics_.add(ids_.truncated);
      break;
    case AttemptKind::kTimeout:
      response.outcome = JobOutcome::kTimeout;
      response.error = ctx.abandon.load(std::memory_order_relaxed)
                           ? "watchdog_abandoned"
                           : "deadline expired";
      breaker.record_timeout(finish);
      metrics_.add(ids_.timeouts);
      break;
    case AttemptKind::kFailed:
      response.outcome = JobOutcome::kFailed;
      response.error = attempt.error;
      breaker.record_failure(finish);
      metrics_.add(ids_.failed);
      break;
    case AttemptKind::kShutdown:
      // Shutdown says nothing about the protocol — no breaker record.
      response.outcome = JobOutcome::kFailed;
      response.error = "shutdown";
      metrics_.add(ids_.failed);
      break;
  }
  // Per-family outcome counter (register-or-lookup, same pattern as the
  // divergence counter above) — what popbean-top's family table reads.
  metrics_.add(metrics_.counter("serve.family." + job.spec.protocol + "." +
                                to_string(response.outcome)));
  update_gauges_locked();
  return response;
}

void JobService::sleep_interruptible(Clock::duration duration,
                                     const ActiveJob& ctx) {
  const auto until = Clock::now() + duration;
  while (Clock::now() < until && !cancel_.load(std::memory_order_relaxed) &&
         !ctx.abandon.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void JobService::begin_drain() {
  std::lock_guard lock(mutex_);
  draining_ = true;
  metrics_.set(ids_.draining, 1.0);
}

bool JobService::drain(std::chrono::milliseconds budget) {
  begin_drain();
  const auto hard = Deadline::after(budget);
  std::vector<JobResponse> to_emit;
  bool clean = false;
  {
    std::unique_lock lock(mutex_);
    const auto drained = [this] { return running_ == 0 && queue_.empty(); };
    if (hard.is_unlimited()) {
      idle_cv_.wait(lock, drained);
      clean = true;
    } else {
      clean = idle_cv_.wait_until(lock, hard.time(), drained);
    }
    if (!clean) {
      // Budget blown: cancel cooperatively and flush the queue — every
      // still-queued job gets its failed("shutdown") response now.
      cancel_.store(true, std::memory_order_relaxed);
      while (std::optional<QueuedJob> job = queue_.pop()) {
        metrics_.add(ids_.failed);
        trace_job_end(job->spec.trace_id, "failed", "shutdown");
        JobResponse response;
        response.id = job->spec.id;
        response.outcome = JobOutcome::kFailed;
        response.error = "shutdown";
        response.trace_id = job->spec.trace_id;
        response.origin = job->spec.origin;
        to_emit.push_back(std::move(response));
      }
      // Running jobs observe cancel_ within a poll interval (or the
      // watchdog grace); the backstop below only trips on a genuine bug.
      idle_cv_.wait_for(lock, std::chrono::seconds(30),
                        [this] { return running_ == 0; });
      POPBEAN_CHECK_MSG(running_ == 0,
                        "JobService::drain: workers ignored cancellation");
    }
    update_gauges_locked();
  }
  for (JobResponse& response : to_emit) emit(std::move(response));
  return clean;
}

void JobService::watchdog_loop() {
  std::unique_lock wl(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(wl, config_.watchdog_interval,
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    wl.unlock();
    const auto now = Clock::now();
    {
      std::lock_guard lock(mutex_);
      for (const std::shared_ptr<ActiveJob>& ctx : active_) {
        if (ctx->abandon.load(std::memory_order_relaxed)) continue;
        if (!ctx->deadline.is_unlimited() &&
            now >= ctx->deadline.time() + config_.watchdog_grace) {
          ctx->abandon.store(true, std::memory_order_relaxed);
          metrics_.add(ids_.watchdog_abandons);
          if (config_.trace != nullptr && ctx->trace_id != 0) {
            config_.trace->async_instant("abandon", "serve", ctx->trace_id);
          }
        }
      }
    }
    wl.lock();
  }
}

int JobService::degradation_level() const {
  std::lock_guard lock(mutex_);
  return level_;
}

std::size_t JobService::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t JobService::inflight() const {
  std::lock_guard lock(mutex_);
  return running_;
}

CircuitBreaker::State JobService::breaker_state(
    const std::string& protocol) const {
  std::lock_guard lock(mutex_);
  const auto& bank = breakers_.breakers();
  const auto it = bank.find(protocol);
  return it == bank.end() ? CircuitBreaker::State::kClosed
                          : it->second.state();
}

std::uint64_t JobService::total_breaker_opens() const {
  std::lock_guard lock(mutex_);
  return breakers_.total_opens();
}

std::uint64_t JobService::total_breaker_closes() const {
  std::lock_guard lock(mutex_);
  return breakers_.total_closes();
}

CircuitBreaker::VoteState JobService::vote_state(
    const std::string& protocol) const {
  std::lock_guard lock(mutex_);
  const auto& bank = breakers_.breakers();
  const auto it = bank.find(protocol);
  return it == bank.end() ? CircuitBreaker::VoteState::kVoting
                          : it->second.vote_state();
}

std::uint64_t JobService::total_divergences() const {
  std::lock_guard lock(mutex_);
  return breakers_.total_divergences();
}

std::uint64_t JobService::total_quarantine_entries() const {
  std::lock_guard lock(mutex_);
  return breakers_.total_quarantine_entries();
}

std::uint64_t JobService::total_quarantine_recoveries() const {
  std::lock_guard lock(mutex_);
  return breakers_.total_quarantine_recoveries();
}

}  // namespace popbean::serve
