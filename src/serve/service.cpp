#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/avc.hpp"
#include "faults/fault_model.hpp"
#include "faults/perturbed_engine.hpp"
#include "faults/schedule_model.hpp"
#include "harness/experiment.hpp"
#include "obs/pool_obs.hpp"
#include "population/count_engine.hpp"
#include "protocols/four_state.hpp"
#include "protocols/three_state.hpp"
#include "util/check.hpp"
#include "zoo/registry.hpp"

namespace popbean::serve {

namespace {

using FpMillis = std::chrono::duration<double, std::milli>;

enum class AttemptKind { kOk, kFailed, kTimeout, kShutdown };

struct Attempt {
  AttemptKind kind = AttemptKind::kFailed;
  JobResult result;
  std::string error;
};

// Runs one attempt's replicates on the count engine. Replicate r of
// attempt a uses rng stream a·1000003 + r, so a retried attempt re-runs an
// identical trajectory unless chaos interferes (job.hpp's determinism
// contract).
template <typename P, typename StopFn>
Attempt run_attempt(const P& protocol, const JobSpec& spec,
                    std::uint32_t replicates, std::uint64_t max_interactions,
                    bool corrupt, double corrupt_rate,
                    std::uint64_t attempt_index, std::uint64_t poll_interval,
                    const StopFn& should_stop,
                    const std::atomic<bool>& cancel) {
  Attempt attempt;
  const MajorityInstance instance = make_instance(spec.n, spec.epsilon);
  const Counts initial = majority_instance_with_margin(
      protocol, instance.n, instance.margin, instance.majority);
  double time_sum = 0.0;
  JobResult agg;
  for (std::uint32_t r = 0; r < replicates; ++r) {
    Xoshiro256ss rng(spec.seed, attempt_index * 1'000'003 + r);
    std::optional<RunResult> result;
    if (corrupt) {
      auto engine = faults::make_perturbed(
          CountEngine<P>(protocol, initial),
          faults::TransientCorruption(corrupt_rate), faults::UniformSchedule{},
          rng);
      result = run_to_convergence_interruptible(engine, rng, max_interactions,
                                                should_stop, poll_interval);
    } else {
      CountEngine<P> engine(protocol, initial);
      result = run_to_convergence_interruptible(engine, rng, max_interactions,
                                                should_stop, poll_interval);
    }
    if (!result) {
      attempt.kind = cancel.load(std::memory_order_relaxed)
                         ? AttemptKind::kShutdown
                         : AttemptKind::kTimeout;
      return attempt;
    }
    ++agg.replicates_run;
    switch (result->status) {
      case RunStatus::kConverged:
        ++agg.converged;
        time_sum += result->parallel_time;
        if (result->decided == instance.correct_output()) {
          ++agg.correct;
        } else {
          ++agg.wrong;
        }
        break;
      case RunStatus::kStepLimit:
        ++agg.step_limit;
        break;
      case RunStatus::kAbsorbing:
        ++agg.absorbing;
        break;
    }
  }
  if (agg.converged > 0) {
    agg.mean_parallel_time = time_sum / static_cast<double>(agg.converged);
  }
  attempt.kind = AttemptKind::kOk;
  attempt.result = agg;
  return attempt;
}

template <typename StopFn>
Attempt dispatch_attempt(const JobSpec& spec, std::uint32_t replicates,
                         std::uint64_t max_interactions, bool corrupt,
                         double corrupt_rate, std::uint64_t attempt_index,
                         std::uint64_t poll_interval, const StopFn& should_stop,
                         const std::atomic<bool>& cancel) {
  if (spec.protocol == "four-state") {
    return run_attempt(FourStateProtocol{}, spec, replicates, max_interactions,
                       corrupt, corrupt_rate, attempt_index, poll_interval,
                       should_stop, cancel);
  }
  if (spec.protocol == "three-state") {
    return run_attempt(ThreeStateProtocol{}, spec, replicates, max_interactions,
                       corrupt, corrupt_rate, attempt_index, poll_interval,
                       should_stop, cancel);
  }
  if (zoo::is_zoo_spec(spec.protocol)) {
    // Shared immutable runtimes (zoo/registry.hpp) — safe across workers.
    // An unknown member throws; execute() surfaces it as a failed job.
    return zoo::with_zoo_runtime(spec.protocol, [&](const auto& runtime) {
      return run_attempt(runtime, spec, replicates, max_interactions, corrupt,
                         corrupt_rate, attempt_index, poll_interval,
                         should_stop, cancel);
    });
  }
  POPBEAN_CHECK_MSG(spec.protocol == "avc",
                    "JobService: unknown protocol " + spec.protocol);
  return run_attempt(avc::AvcProtocol(spec.m, spec.d), spec, replicates,
                     max_interactions, corrupt, corrupt_rate, attempt_index,
                     poll_interval, should_stop, cancel);
}

}  // namespace

JobService::MetricIds JobService::register_metrics(
    obs::MetricsRegistry& registry) {
  const Histogram latency_shape = Histogram::logarithmic(1e-3, 3.6e6, 48);
  MetricIds ids;
  ids.accepted = registry.counter("serve.accepted");
  ids.rejected = registry.counter("serve.rejected");
  ids.invalid = registry.counter("serve.invalid");
  ids.completed = registry.counter("serve.completed");
  ids.truncated = registry.counter("serve.truncated");
  ids.failed = registry.counter("serve.failed");
  ids.timeouts = registry.counter("serve.timeouts");
  ids.retries = registry.counter("serve.retries");
  ids.shed = registry.counter("serve.shed");
  ids.circuit_open = registry.counter("serve.circuit_open");
  ids.watchdog_abandons = registry.counter("serve.watchdog_abandons");
  ids.live = registry.gauge("serve.live");
  ids.draining = registry.gauge("serve.draining");
  ids.queue_depth = registry.gauge("serve.queue_depth");
  ids.queue_capacity = registry.gauge("serve.queue_capacity");
  ids.inflight = registry.gauge("serve.inflight");
  ids.degradation_level = registry.gauge("serve.degradation_level");
  ids.breakers_open = registry.gauge("serve.breakers_open");
  ids.overloaded = registry.gauge("serve.overloaded");
  ids.queue_ms = registry.histogram("serve.queue_ms", latency_shape);
  ids.run_ms = registry.histogram("serve.run_ms", latency_shape);
  return ids;
}

JobService::JobService(ServiceConfig config, ResponseFn on_response)
    : config_(std::move(config)),
      on_response_(std::move(on_response)),
      owned_metrics_(config_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>()),
      metrics_(config_.metrics != nullptr ? *config_.metrics
                                          : *owned_metrics_),
      ids_(register_metrics(metrics_)),
      queue_(config_.admission),
      breakers_(config_.breaker),
      pool_(config_.threads),
      watchdog_([this] { watchdog_loop(); }) {
  POPBEAN_CHECK_MSG(on_response_ != nullptr,
                    "JobService: a response sink is required");
  // Observer attached before any submit — the pool's attach-then-submit
  // contract (thread_pool.hpp).
  obs::attach_thread_pool(pool_, metrics_);
  metrics_.set(ids_.live, 1.0);
  metrics_.set(ids_.queue_capacity,
               static_cast<double>(config_.admission.capacity));
}

JobService::~JobService() {
  drain(config_.drain_deadline);
  {
    std::lock_guard lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  pool_.shutdown();
  metrics_.set(ids_.live, 0.0);
}

void JobService::emit(JobResponse response) {
  std::lock_guard lock(response_mutex_);
  on_response_(response);
}

JobResponse JobService::overloaded_response(std::string id,
                                            std::string reason) const {
  JobResponse response;
  response.id = std::move(id);
  response.outcome = JobOutcome::kOverloaded;
  response.error = std::move(reason);
  return response;
}

bool JobService::submit(JobSpec spec) {
  const auto now = Clock::now();
  std::vector<JobResponse> to_emit;
  bool admitted = false;
  {
    std::lock_guard lock(mutex_);
    if (draining_) {
      metrics_.add(ids_.rejected);
      to_emit.push_back(overloaded_response(spec.id, "draining"));
    } else {
      QueuedJob job;
      job.spec = std::move(spec);
      const std::chrono::milliseconds budget =
          job.spec.deadline.count() != 0 ? job.spec.deadline
                                         : config_.default_deadline;
      job.deadline = budget.count() != 0 ? Deadline::after(budget, now)
                                         : Deadline::unlimited();
      job.admitted = now;
      job.sequence = next_sequence_++;
      const std::string id = job.spec.id;  // push moves the job
      AdmitResult result = queue_.push(std::move(job));
      if (!result.admitted) {
        metrics_.add(ids_.rejected);
        to_emit.push_back(overloaded_response(id, result.reason));
      } else {
        admitted = true;
        metrics_.add(ids_.accepted);
        if (result.evicted.has_value()) {
          metrics_.add(ids_.shed);
          to_emit.push_back(overloaded_response(result.evicted->spec.id,
                                                "shed_deadline"));
        }
        for (QueuedJob& victim : update_overload_locked(now)) {
          metrics_.add(ids_.shed);
          to_emit.push_back(
              overloaded_response(victim.spec.id, "shed_overload"));
        }
        pump_locked();
      }
    }
    update_gauges_locked();
  }
  for (JobResponse& response : to_emit) emit(std::move(response));
  return admitted;
}

void JobService::note_invalid() { metrics_.add(ids_.invalid); }

void JobService::pump_locked() {
  while (!cancel_.load(std::memory_order_relaxed) &&
         running_ < pool_.thread_count()) {
    std::optional<QueuedJob> job = queue_.pop();
    if (!job.has_value()) break;
    ++running_;
    auto ctx = std::make_shared<ActiveJob>();
    ctx->deadline = job->deadline;
    ctx->id = job->spec.id;
    active_.push_back(ctx);
    // Boxed so the lambda stays copyable (std::function requirement).
    auto boxed = std::make_shared<QueuedJob>(std::move(*job));
    pool_.submit(boxed->spec.id,
                 [this, boxed, ctx] { run_job(*boxed, *ctx); });
  }
}

std::vector<QueuedJob> JobService::update_overload_locked(
    Clock::time_point now) {
  std::vector<QueuedJob> shed;
  const double occupancy = queue_.occupancy();
  if (occupancy >= config_.degradation.high_watermark) {
    if (!overload_since_.has_value()) overload_since_ = now;
    const auto dwell = now - *overload_since_;
    int level = 1;
    if (dwell >= config_.degradation.escalate_after) level = 2;
    if (dwell >= 2 * config_.degradation.escalate_after) level = 3;
    level_ = std::max(level_, level);
    if (level_ >= 3) {
      while (queue_.occupancy() > config_.degradation.high_watermark) {
        std::optional<QueuedJob> victim = queue_.shed_lowest();
        if (!victim.has_value()) break;
        shed.push_back(std::move(*victim));
      }
    }
  } else if (occupancy <= config_.degradation.low_watermark) {
    // Hysteresis: between the watermarks the current rung holds.
    overload_since_.reset();
    level_ = 0;
  }
  return shed;
}

void JobService::update_gauges_locked() {
  metrics_.set(ids_.queue_depth, static_cast<double>(queue_.size()));
  metrics_.set(ids_.inflight, static_cast<double>(running_));
  metrics_.set(ids_.degradation_level, static_cast<double>(level_));
  metrics_.set(ids_.breakers_open,
               static_cast<double>(breakers_.open_count()));
  metrics_.set(ids_.overloaded,
               queue_.occupancy() >= config_.degradation.high_watermark ? 1.0
                                                                        : 0.0);
}

void JobService::run_job(const QueuedJob& job, ActiveJob& ctx) {
  emit(execute(job, ctx));
  std::vector<JobResponse> to_emit;
  {
    std::lock_guard lock(mutex_);
    POPBEAN_CHECK(running_ > 0);
    --running_;
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&ctx](const std::shared_ptr<ActiveJob>& a) {
                                   return a.get() == &ctx;
                                 }),
                  active_.end());
    for (QueuedJob& victim : update_overload_locked(Clock::now())) {
      metrics_.add(ids_.shed);
      to_emit.push_back(overloaded_response(victim.spec.id, "shed_overload"));
    }
    pump_locked();
    update_gauges_locked();
    if (running_ == 0 && queue_.empty()) idle_cv_.notify_all();
  }
  for (JobResponse& response : to_emit) emit(std::move(response));
}

JobResponse JobService::execute(const QueuedJob& job, ActiveJob& ctx) {
  const auto start = Clock::now();
  JobResponse response;
  response.id = job.spec.id;
  response.queue_ms = FpMillis(start - job.admitted).count();
  metrics_.observe(ids_.queue_ms, response.queue_ms);

  if (job.deadline.expired(start)) {
    // Expired while queued: the job never ran, so the breaker learns
    // nothing about the protocol from it.
    metrics_.add(ids_.timeouts);
    response.outcome = JobOutcome::kTimeout;
    response.error = "deadline expired in queue";
    return response;
  }
  {
    std::lock_guard lock(mutex_);
    CircuitBreaker& breaker = breakers_.for_key(job.spec.protocol);
    if (!breaker.allow(start)) {
      metrics_.add(ids_.circuit_open);
      metrics_.add(ids_.failed);
      update_gauges_locked();
      response.outcome = JobOutcome::kFailed;
      response.error = "circuit_open";
      return response;
    }
    update_gauges_locked();  // allow() may have moved open → half-open
  }

  // Snapshot the degradation ladder for this job.
  std::uint32_t replicates = job.spec.replicates;
  std::uint64_t max_interactions = job.spec.effective_max_interactions();
  {
    std::lock_guard lock(mutex_);
    if (level_ >= 1 && replicates > 1) {
      replicates = 1;
      response.degraded = true;
    }
    if (level_ >= 2 &&
        config_.degradation.truncate_interactions < max_interactions) {
      max_interactions = config_.degradation.truncate_interactions;
      response.degraded = true;
    }
  }
  const bool capped = max_interactions < job.spec.effective_max_interactions();

  DecorrelatedJitterBackoff backoff(config_.backoff,
                                    Xoshiro256ss(config_.seed, job.sequence));
  const auto should_stop = [this, &ctx, &job] {
    return cancel_.load(std::memory_order_relaxed) ||
           ctx.abandon.load(std::memory_order_relaxed) ||
           job.deadline.expired();
  };

  Attempt attempt;
  for (std::size_t attempt_index = 0;; ++attempt_index) {
    ++response.attempts;
    ChaosAction action = ChaosAction::kNone;
    if (config_.chaos) {
      action = config_.chaos(ChaosContext{job.spec, attempt_index,
                                          job.sequence});
    }
    if (action == ChaosAction::kSlow) {
      // A wedged worker: deliberately does NOT poll the job deadline, so
      // only the watchdog's abandon flag or a drain cancel unsticks it.
      const auto stall_until = Clock::now() + config_.chaos_slow;
      while (Clock::now() < stall_until &&
             !cancel_.load(std::memory_order_relaxed) &&
             !ctx.abandon.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (action == ChaosAction::kFail) {
      attempt = Attempt{AttemptKind::kFailed, JobResult{}, "chaos_fail"};
    } else {
      try {
        attempt = dispatch_attempt(
            job.spec, replicates, max_interactions,
            action == ChaosAction::kCorrupt, config_.chaos_corrupt_rate,
            static_cast<std::uint64_t>(attempt_index),
            config_.stop_check_interval, should_stop, cancel_);
      } catch (const std::exception& e) {
        attempt = Attempt{AttemptKind::kFailed, JobResult{}, e.what()};
      }
    }
    if (attempt.kind != AttemptKind::kFailed) break;
    const bool may_retry = attempt_index < config_.max_retries &&
                           !job.deadline.expired() &&
                           !cancel_.load(std::memory_order_relaxed) &&
                           !ctx.abandon.load(std::memory_order_relaxed);
    if (!may_retry) break;
    metrics_.add(ids_.retries);
    const auto delay = std::min<Clock::duration>(backoff.next(),
                                                 job.deadline.remaining());
    sleep_interruptible(delay, ctx);
  }

  const auto finish = Clock::now();
  response.run_ms = FpMillis(finish - start).count();
  metrics_.observe(ids_.run_ms, response.run_ms);

  std::lock_guard lock(mutex_);
  CircuitBreaker& breaker = breakers_.for_key(job.spec.protocol);
  switch (attempt.kind) {
    case AttemptKind::kOk:
      response.outcome = capped ? JobOutcome::kTruncated : JobOutcome::kDone;
      response.result = attempt.result;
      breaker.record_success(finish);
      metrics_.add(ids_.completed);
      if (capped) metrics_.add(ids_.truncated);
      break;
    case AttemptKind::kTimeout:
      response.outcome = JobOutcome::kTimeout;
      response.error = ctx.abandon.load(std::memory_order_relaxed)
                           ? "watchdog_abandoned"
                           : "deadline expired";
      breaker.record_timeout(finish);
      metrics_.add(ids_.timeouts);
      break;
    case AttemptKind::kFailed:
      response.outcome = JobOutcome::kFailed;
      response.error = attempt.error;
      breaker.record_failure(finish);
      metrics_.add(ids_.failed);
      break;
    case AttemptKind::kShutdown:
      // Shutdown says nothing about the protocol — no breaker record.
      response.outcome = JobOutcome::kFailed;
      response.error = "shutdown";
      metrics_.add(ids_.failed);
      break;
  }
  update_gauges_locked();
  return response;
}

void JobService::sleep_interruptible(Clock::duration duration,
                                     const ActiveJob& ctx) {
  const auto until = Clock::now() + duration;
  while (Clock::now() < until && !cancel_.load(std::memory_order_relaxed) &&
         !ctx.abandon.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void JobService::begin_drain() {
  std::lock_guard lock(mutex_);
  draining_ = true;
  metrics_.set(ids_.draining, 1.0);
}

bool JobService::drain(std::chrono::milliseconds budget) {
  begin_drain();
  const auto hard = Deadline::after(budget);
  std::vector<JobResponse> to_emit;
  bool clean = false;
  {
    std::unique_lock lock(mutex_);
    const auto drained = [this] { return running_ == 0 && queue_.empty(); };
    if (hard.is_unlimited()) {
      idle_cv_.wait(lock, drained);
      clean = true;
    } else {
      clean = idle_cv_.wait_until(lock, hard.time(), drained);
    }
    if (!clean) {
      // Budget blown: cancel cooperatively and flush the queue — every
      // still-queued job gets its failed("shutdown") response now.
      cancel_.store(true, std::memory_order_relaxed);
      while (std::optional<QueuedJob> job = queue_.pop()) {
        metrics_.add(ids_.failed);
        JobResponse response;
        response.id = job->spec.id;
        response.outcome = JobOutcome::kFailed;
        response.error = "shutdown";
        to_emit.push_back(std::move(response));
      }
      // Running jobs observe cancel_ within a poll interval (or the
      // watchdog grace); the backstop below only trips on a genuine bug.
      idle_cv_.wait_for(lock, std::chrono::seconds(30),
                        [this] { return running_ == 0; });
      POPBEAN_CHECK_MSG(running_ == 0,
                        "JobService::drain: workers ignored cancellation");
    }
    update_gauges_locked();
  }
  for (JobResponse& response : to_emit) emit(std::move(response));
  return clean;
}

void JobService::watchdog_loop() {
  std::unique_lock wl(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(wl, config_.watchdog_interval,
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    wl.unlock();
    const auto now = Clock::now();
    {
      std::lock_guard lock(mutex_);
      for (const std::shared_ptr<ActiveJob>& ctx : active_) {
        if (ctx->abandon.load(std::memory_order_relaxed)) continue;
        if (!ctx->deadline.is_unlimited() &&
            now >= ctx->deadline.time() + config_.watchdog_grace) {
          ctx->abandon.store(true, std::memory_order_relaxed);
          metrics_.add(ids_.watchdog_abandons);
        }
      }
    }
    wl.lock();
  }
}

int JobService::degradation_level() const {
  std::lock_guard lock(mutex_);
  return level_;
}

std::size_t JobService::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t JobService::inflight() const {
  std::lock_guard lock(mutex_);
  return running_;
}

CircuitBreaker::State JobService::breaker_state(
    const std::string& protocol) const {
  std::lock_guard lock(mutex_);
  const auto& bank = breakers_.breakers();
  const auto it = bank.find(protocol);
  return it == bank.end() ? CircuitBreaker::State::kClosed
                          : it->second.state();
}

std::uint64_t JobService::total_breaker_opens() const {
  std::lock_guard lock(mutex_);
  return breakers_.total_opens();
}

std::uint64_t JobService::total_breaker_closes() const {
  std::lock_guard lock(mutex_);
  return breakers_.total_closes();
}

}  // namespace popbean::serve
