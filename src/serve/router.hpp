// ShardRouter: N in-process JobService shards, each owning a slice of job
// families (DESIGN.md §12).
//
// Placement is rendezvous (highest-random-weight) hashing on the protocol
// fingerprint: shard(family) = argmax_i mix_seed(fnv1a64(family), i). Every
// shard scores every family independently, so adding or removing a shard
// moves only the families whose top score changed — no modular-bucket
// avalanche — and two routers with the same shard count always agree, with
// no coordination state.
//
// Each shard is a full JobService: its own admission queue, breaker bank
// (including vote quarantine), degradation ladder, and metrics registry.
// A family's breaker state therefore lives exactly where its jobs run.
//
// Admission is shard-aware: a job goes to its owner shard first; if the
// owner rejects (queue full, quota, draining), the router walks the
// remaining shards in descending rendezvous order (each family has its own
// deterministic fallback sequence, so spill load spreads instead of piling
// onto shard 0). Only when every shard rejects does the router emit the
// single `overloaded` response — the exactly-one-response contract holds
// across the fleet because rejected-then-redirected submissions use
// try_submit(), which reports the reason without emitting.
//
// Remote shards (DESIGN.md §14) extend the slot space past the local
// services: a ShardProxy occupies rendezvous slots L..L+R-1 after the L
// local shards and competes in the same HRW scoring, so a family's owner
// may live in another process and the spill walk crosses process
// boundaries without the router knowing anything about sockets. Proxies
// deliver their responses through their own transport; the router only
// ever sees admit/reject.
//
// Shutdown drains all shards against one shared budget: admission stops
// everywhere first (no shard can spill into a sibling that is already
// draining), then each shard drains with whatever budget remains.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/context.hpp"
#include "obs/prom.hpp"
#include "serve/health.hpp"
#include "serve/service.hpp"
#include "util/backoff.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean::serve {

// A shard the router reaches through a narrow admission/drain interface
// instead of owning in-process. net/remote_shard.hpp implements it over
// TCP; tests stub it. An implementation that admits a job (try_submit →
// nullopt) takes over the exactly-one-response contract for that job and
// delivers the terminal response through its own path — the router never
// hears about it again.
class ShardProxy {
 public:
  virtual ~ShardProxy() = default;
  // Like JobService::try_submit: nullopt = admitted, otherwise the
  // rejection reason (breaker open, link down, inflight cap, draining)
  // and the job was NOT taken, so the router keeps walking the spill
  // order. Must be thread-safe; must not block on the network beyond a
  // bounded connect/write.
  virtual std::optional<std::string> try_submit(JobSpec spec) = 0;
  // Stops admitting; in-flight jobs keep their response path.
  virtual void begin_drain() = 0;
  // Waits up to `budget` for in-flight jobs to reach their terminal
  // response (flushing them as failed past the budget). True = clean.
  virtual bool drain(std::chrono::milliseconds budget) = 0;
};

struct RouterConfig {
  std::size_t shards = 1;
  // Walk sibling shards on owner rejection; false = strict ownership (the
  // owner's rejection is final).
  bool reject_to_sibling = true;
  // Per-shard service template. `metrics` must be null (each shard owns its
  // registry so per-shard health stays meaningful); `telemetry` may be
  // shared (the sink is line-granular under its own mutex).
  ServiceConfig service;
  // Remote shards: slot i of `remotes` occupies rendezvous slot shards+i.
  // Shared because the transport that feeds a proxy its responses usually
  // co-owns it. Health/metrics of a remote shard live in its own process
  // (health() here covers local shards only).
  std::vector<std::shared_ptr<ShardProxy>> remotes;
};

class ShardRouter {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t redirected = 0;    // admitted by a non-owner slot
    std::uint64_t rejected_all = 0;  // every slot said no
    std::uint64_t remote = 0;        // admitted by a remote shard proxy
  };

  ShardRouter(RouterConfig config, JobService::ResponseFn on_response)
      : config_(std::move(config)),
        on_response_(std::move(on_response)) {
    POPBEAN_CHECK_MSG(config_.shards >= 1,
                      "ShardRouter: at least one shard required");
    for (const auto& remote : config_.remotes) {
      POPBEAN_CHECK_MSG(remote != nullptr,
                        "ShardRouter: null remote shard proxy");
    }
    POPBEAN_CHECK_MSG(config_.service.metrics == nullptr,
                      "ShardRouter: shards own their metrics registries");
    POPBEAN_CHECK_MSG(on_response_ != nullptr,
                      "ShardRouter: a response sink is required");
    shards_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      ServiceConfig shard_config = config_.service;
      // Decorrelate backoff jitter across shards.
      shard_config.seed = mix_seed(config_.service.seed, i);
      // Responses, spans, and slow-log entries name the shard that served
      // them (the trace/slow_log pointers are shared across shards — both
      // serialize internally, and a fleet reads best on one timeline).
      shard_config.shard_index = i;
      shards_.push_back(std::make_unique<JobService>(
          std::move(shard_config), [this](const JobResponse& response) {
            std::lock_guard lock(response_mutex_);
            on_response_(response);
          }));
    }
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }
  // Local shards plus remote proxy slots — the rendezvous slot space.
  std::size_t slot_count() const noexcept {
    return shards_.size() + config_.remotes.size();
  }
  JobService& shard(std::size_t i) { return *shards_.at(i); }
  const JobService& shard(std::size_t i) const { return *shards_.at(i); }

  // Owner slot of a family (top rendezvous score); may name a remote.
  std::size_t owner_of(std::string_view family) const {
    return rendezvous_order(family).front();
  }

  // All slots in descending rendezvous score for a family: the owner
  // first, then the deterministic spill sequence.
  std::vector<std::size_t> rendezvous_order(std::string_view family) const {
    const std::uint64_t fingerprint = fnv1a64(family);
    std::vector<std::size_t> order(slot_count());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<std::uint64_t> score(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      score[i] = mix_seed(fingerprint, i);
    }
    std::sort(order.begin(), order.end(),
              [&score](std::size_t a, std::size_t b) {
                return score[a] != score[b] ? score[a] > score[b] : a < b;
              });
    return order;
  }

  // Routes one job. Returns true when some shard admitted it; false means
  // the single `overloaded` response was already delivered.
  bool submit(JobSpec spec) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.submitted;
    }
    // Mint before the spill walk: try_submit copies the spec per shard, so
    // minting inside a shard would give every spill attempt a fresh id and
    // split one job across trace trees.
    if (config_.service.trace != nullptr && spec.trace_id == 0) {
      spec.trace_id = obs::mint_trace_id();
    }
    const std::vector<std::size_t> order = rendezvous_order(spec.protocol);
    std::string reason;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::size_t i = order[pos];
      const bool is_remote = i >= shards_.size();
      std::optional<std::string> rejected =
          is_remote ? config_.remotes[i - shards_.size()]->try_submit(spec)
                    : shards_[i]->try_submit(spec);
      if (!rejected.has_value()) {
        if (pos > 0 || is_remote) {
          std::lock_guard lock(stats_mutex_);
          if (pos > 0) ++stats_.redirected;
          if (is_remote) ++stats_.remote;
        }
        return true;
      }
      if (pos == 0) reason = std::move(*rejected);
      if (!config_.reject_to_sibling) break;
    }
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.rejected_all;
    }
    JobResponse response;
    response.origin = spec.origin;
    response.id = std::move(spec.id);
    response.outcome = JobOutcome::kOverloaded;
    response.error = config_.reject_to_sibling
                         ? "all_shards_overloaded"
                         : std::move(reason);
    // Each shard's try_submit recorded its own reject instant; the spec's
    // trace id (minted at decode) still joins this response to them.
    response.trace_id = spec.trace_id;
    response.shard = order.front();  // the owner that should have served it
    {
      std::lock_guard lock(response_mutex_);
      on_response_(response);
    }
    return false;
  }

  // Counted on the owner of nothing — shard 0 keeps the fleet's invalid
  // total so health sums stay correct.
  void note_invalid() { shards_.front()->note_invalid(); }

  void begin_drain() {
    for (const auto& shard : shards_) shard->begin_drain();
    for (const auto& remote : config_.remotes) remote->begin_drain();
  }

  // Drain-all: stop admission on every slot first, then drain each local
  // shard, then each remote proxy, against the shared absolute deadline.
  // Returns true only if every slot drained cleanly within the budget.
  bool drain(std::chrono::milliseconds budget) {
    begin_drain();
    const Deadline hard = Deadline::after(budget);
    const auto remaining_budget = [&hard, budget] {
      if (hard.is_unlimited()) return budget;
      return std::max(std::chrono::milliseconds{0},
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          hard.remaining()));
    };
    bool clean = true;
    for (const auto& shard : shards_) {
      clean = shard->drain(remaining_budget()) && clean;
    }
    for (const auto& remote : config_.remotes) {
      clean = remote->drain(remaining_budget()) && clean;
    }
    return clean;
  }

  Stats stats() const {
    std::lock_guard lock(stats_mutex_);
    return stats_;
  }

  // Fleet health: live/ready are conjunctions, overloaded is a disjunction,
  // counters and depths are sums, degradation level is the max.
  HealthSnapshot health() const {
    HealthSnapshot fleet;
    fleet.live = true;
    fleet.ready = true;
    for (const auto& shard : shards_) {
      const HealthSnapshot h = shard->health();
      fleet.live = fleet.live && h.live;
      fleet.ready = fleet.ready && h.ready;
      fleet.overloaded = fleet.overloaded || h.overloaded;
      fleet.queue_depth += h.queue_depth;
      fleet.queue_capacity += h.queue_capacity;
      fleet.inflight += h.inflight;
      fleet.degradation_level =
          std::max(fleet.degradation_level, h.degradation_level);
      fleet.breakers_open += h.breakers_open;
      fleet.accepted += h.accepted;
      fleet.rejected += h.rejected;
      fleet.invalid += h.invalid;
      fleet.completed += h.completed;
      fleet.truncated += h.truncated;
      fleet.failed += h.failed;
      fleet.timeouts += h.timeouts;
      fleet.retries += h.retries;
      fleet.shed += h.shed;
      fleet.voted += h.voted;
      fleet.divergences += h.divergences;
      fleet.no_majority += h.no_majority;
      fleet.quarantine_entered += h.quarantine_entered;
      fleet.quarantine_recovered += h.quarantine_recovered;
      fleet.quarantined_jobs += h.quarantined_jobs;
      fleet.quarantined_families += h.quarantined_families;
    }
    return fleet;
  }

  std::vector<HealthSnapshot> shard_health() const {
    std::vector<HealthSnapshot> all;
    all.reserve(shards_.size());
    for (const auto& shard : shards_) all.push_back(shard->health());
    return all;
  }

  // Prometheus text-format exposition (obs/prom.hpp) of the whole fleet:
  // every registry series once per shard under shard="i", plus the merged
  // rollup under shard="fleet" (counters/histograms summed, gauges from the
  // last shard — meaningful fleet gauges live in the per-shard series) and
  // the router's own spill counters. `enrich` lets a front end append
  // series the router cannot see (the TCP server's connection counters)
  // into the same exposition before it is written, so one scrape covers
  // the whole process. Remote shards expose themselves in their own
  // process; this exposition covers local slots only.
  void write_prometheus(
      std::ostream& os,
      const std::function<void(obs::PromExposition&)>& enrich = {}) const {
    std::vector<obs::MetricsRegistry::Snapshot> snaps;
    snaps.reserve(shards_.size());
    for (const auto& shard : shards_) {
      snaps.push_back(shard->metrics().snapshot());
    }
    obs::PromExposition prom;
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      prom.add(snaps[i], {{"shard", std::to_string(i)}});
    }
    prom.add(obs::merge_snapshots(snaps), {{"shard", "fleet"}});
    if (config_.service.trace != nullptr) {
      prom.add_counter("obs.trace_events_dropped",
                       config_.service.trace->dropped_count(),
                       {{"shard", "fleet"}});
    }
    const Stats s = stats();
    prom.add_counter("router.submitted", s.submitted, {{"shard", "fleet"}});
    prom.add_counter("router.redirected", s.redirected, {{"shard", "fleet"}});
    prom.add_counter("router.rejected_all", s.rejected_all,
                     {{"shard", "fleet"}});
    prom.add_counter("router.remote_admitted", s.remote,
                     {{"shard", "fleet"}});
    if (enrich) enrich(prom);
    prom.write(os);
  }

  std::uint64_t total_breaker_opens() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->total_breaker_opens();
    return total;
  }

  std::uint64_t total_breaker_closes() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->total_breaker_closes();
    return total;
  }

 private:
  RouterConfig config_;
  JobService::ResponseFn on_response_;
  std::mutex response_mutex_;  // serializes the shared sink across shards
  mutable std::mutex stats_mutex_;
  Stats stats_;
  std::vector<std::unique_ptr<JobService>> shards_;
};

}  // namespace popbean::serve
