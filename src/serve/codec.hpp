// Versioned NDJSON request/response codec for the job service.
//
// Requests are one JSON object per line:
//
//   {"v": 1, "id": "job-7", "protocol": "avc", "n": 10000, "eps": 0.01,
//    "seed": 42, "max_interactions": 5000000, "replicates": 3,
//    "priority": "high", "deadline_ms": 2000, "client": "alice",
//    "m": 3, "d": 1}
//
// Only "v" and "id" are required; everything else defaults per JobSpec.
// Unknown fields are an error (a typo'd parameter must not silently run a
// default experiment — same stance as util/cli). Responses are emitted on
// util/json.hpp's writer, one line per terminal outcome:
//
//   {"v": 1, "id": "job-7", "outcome": "done", "attempts": 1,
//    "degraded": false, "queue_ms": 0.4, "run_ms": 83.1,
//    "result": {"replicates": 3, "converged": 3, "correct": 3, …}}
//
// The version field gates forward compatibility: a request with a version
// this build does not speak is rejected as invalid, never half-parsed.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "serve/job.hpp"

namespace popbean::serve {

inline constexpr std::uint64_t kProtocolVersion = 1;

// A request line parses into either a JobSpec or a rejection message.
struct RequestError {
  std::string id;     // echoed when the id could still be extracted
  std::string error;  // human-readable reason
};

using ParsedRequest = std::variant<JobSpec, RequestError>;

// Parses one NDJSON request line. Never throws on malformed input — every
// defect is folded into RequestError so the caller can answer with an
// `invalid` response instead of dying on a bad client.
ParsedRequest parse_job_request(std::string_view line);

// Writes one response line (terminated with '\n'). Thread-unsafe; callers
// serialize (the service invokes its response callback under a lock).
void write_job_response(std::ostream& os, const JobResponse& response);

// Serializes to a string, for tests and for sinks that batch lines.
std::string job_response_line(const JobResponse& response);

}  // namespace popbean::serve
