// Versioned NDJSON request/response codec for the job service.
//
// Requests are one JSON object per line:
//
//   {"v": 2, "id": "job-7", "protocol": "avc", "n": 10000, "eps": 0.01,
//    "seed": 42, "max_interactions": 5000000, "replicates": 3,
//    "replicas": 3, "priority": "high", "deadline_ms": 2000,
//    "client": "alice", "m": 3, "d": 1}
//
// Only "v" and "id" are required; everything else defaults per JobSpec.
// Unknown fields are an error (a typo'd parameter must not silently run a
// default experiment — same stance as util/cli). Responses are emitted on
// util/json.hpp's writer, one line per terminal outcome (schema v2 adds
// the replication labels):
//
//   {"v": 2, "id": "job-7", "outcome": "done", "attempts": 1,
//    "degraded": false, "replicas_used": 3, "voted": true,
//    "quarantined": false, "divergent": 0, "queue_ms": 0.4, "run_ms": 83.1,
//    "trace_id": 16794093..., "shard": 2,
//    "result": {"replicates": 3, "converged": 3, "correct": 3, …}}
//
// The version field gates forward compatibility: this build speaks request
// versions kMinProtocolVersion..kProtocolVersion (v1 requests are a strict
// subset of v2 — "replicas" and the optional caller-supplied "trace_id" are
// the v2 additions, both defaulting off), and anything newer is rejected as
// invalid, never half-parsed. Responses are always emitted at
// kProtocolVersion; "trace_id" echoes the request-scoped trace minted by
// RequestReader (DESIGN.md §13) and "shard" names the router shard that
// served the job.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "serve/job.hpp"

namespace popbean::serve {

inline constexpr std::uint64_t kProtocolVersion = 2;
inline constexpr std::uint64_t kMinProtocolVersion = 1;

// A request line parses into either a JobSpec or a rejection message.
struct RequestError {
  std::string id;     // echoed when the id could still be extracted
  std::string error;  // human-readable reason
};

using ParsedRequest = std::variant<JobSpec, RequestError>;

// Parses one NDJSON request line. Never throws on malformed input — every
// defect is folded into RequestError so the caller can answer with an
// `invalid` response instead of dying on a bad client.
ParsedRequest parse_job_request(std::string_view line);

// Serializes a spec back to one v2 request line (no trailing '\n') that
// parse_job_request round-trips: fields at their JobSpec defaults are
// omitted, so a forwarded spec is accepted by any peer speaking v2. This
// is the remote-spill wire format (DESIGN.md §14) — the spec's trace_id
// rides along, which is how span trees stay causally linked across
// process boundaries; the origin token does NOT (it is meaningful only
// inside the process that minted it).
std::string job_request_line(const JobSpec& spec);

// Parses one response line (the inverse of write_job_response), for the
// remote-spill client and the TCP stress clients. Strict like the request
// parser: unknown fields, wrong types, and unsupported versions are
// errors — but an EMPTY id is accepted (unlike requests), because
// server-synthesized rejections attributable to no job legitimately ship
// with id "". Returns the error text via *error (when non-null), nullopt.
std::optional<JobResponse> parse_job_response(std::string_view line,
                                              std::string* error = nullptr);

// Connection-scoped strict reader: parse_job_request plus the per-
// connection state a stateless parse cannot enforce — running byte offsets
// and the set of job ids already seen. A duplicate job id within one
// connection is a strict-codec error naming the id and both byte offsets
// (the exactly-one-response contract is per id; a client reusing an id
// could never tell its two submissions' responses apart). The one-argument
// overload assumes '\n'-terminated lines; the TCP front end passes the
// frame's true wire size instead, so offsets in diagnostics stay exact
// even for CRLF-framed clients.
class RequestReader {
 public:
  ParsedRequest next(std::string_view line) {
    return next(line, line.size() + 1);
  }
  ParsedRequest next(std::string_view line, std::uint64_t framed_size);

  std::uint64_t bytes_consumed() const noexcept { return offset_; }
  std::size_t ids_seen() const noexcept { return first_use_.size(); }

 private:
  std::uint64_t offset_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> first_use_;
};

// Writes one response line (terminated with '\n'). Thread-unsafe; callers
// serialize (the service invokes its response callback under a lock).
void write_job_response(std::ostream& os, const JobResponse& response);

// Serializes to a string, for tests and for sinks that batch lines.
std::string job_response_line(const JobResponse& response);

}  // namespace popbean::serve
