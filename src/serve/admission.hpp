// Bounded priority admission queue with pluggable load shedding.
//
// The service's first line of defense against overload (DESIGN.md §9):
// queue growth is bounded by `capacity`, and when the bound is hit a shed
// policy decides *which* job loses — but some job always loses explicitly;
// there is no silent drop. Every push returns an AdmitResult the caller
// turns into either a queue entry or an `overloaded` response (possibly for
// a previously queued job that was evicted to make room).
//
// Policies:
//   * kRejectNewest   — the incoming job is rejected. Simplest and fair to
//     work already admitted; the default.
//   * kDeadlineAware  — prefer shedding the job least likely to make its
//     deadline: first any queued job whose deadline has already expired,
//     else whichever of {incoming, queued} has the soonest deadline (jobs
//     without deadlines are never preferred victims).
//   * kClientQuota    — like kRejectNewest, but additionally caps the
//     queued jobs per client key, so one chatty client cannot occupy the
//     whole queue even below capacity.
//
// Within the bound, pop() serves strict priority order (high before normal
// before low), FIFO within a priority class. The queue is NOT thread-safe:
// the JobService owns one and accesses it under its own mutex, which keeps
// the structure directly unit-testable.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "serve/job.hpp"
#include "util/backoff.hpp"
#include "util/check.hpp"

namespace popbean::serve {

enum class ShedPolicy { kRejectNewest, kDeadlineAware, kClientQuota };

inline const char* to_string(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNewest: return "reject-newest";
    case ShedPolicy::kDeadlineAware: return "deadline-aware";
    case ShedPolicy::kClientQuota: return "client-quota";
  }
  return "reject-newest";
}

struct AdmissionConfig {
  std::size_t capacity = 256;
  ShedPolicy policy = ShedPolicy::kRejectNewest;
  // Max queued jobs per client key under kClientQuota (0 = no per-client
  // cap). Jobs with an empty client key share one anonymous bucket.
  std::size_t per_client_quota = 0;
};

// A job at rest in the queue: the spec plus its resolved absolute deadline
// and admission timestamp.
struct QueuedJob {
  JobSpec spec;
  Deadline deadline;  // resolved at admission (spec.deadline or default)
  std::chrono::steady_clock::time_point admitted{};
  std::uint64_t sequence = 0;  // service-wide admission order
};

// Verdict of one push. Exactly one of these shapes:
//   admitted && !evicted  — the job is queued.
//   admitted &&  evicted  — the job is queued; `evicted` was shed to make
//                           room and must receive an `overloaded` response.
//   !admitted             — the incoming job was rejected with `reason`.
struct AdmitResult {
  bool admitted = false;
  std::string reason;
  std::optional<QueuedJob> evicted;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config) : config_(config) {
    POPBEAN_CHECK(config.capacity > 0);
  }

  const AdmissionConfig& config() const noexcept { return config_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return config_.capacity; }
  double occupancy() const noexcept {
    return static_cast<double>(size_) / static_cast<double>(config_.capacity);
  }

  AdmitResult push(QueuedJob job) {
    if (config_.policy == ShedPolicy::kClientQuota &&
        config_.per_client_quota > 0 &&
        client_counts_[job.spec.client] >= config_.per_client_quota) {
      return {false, "client_quota", std::nullopt};
    }
    if (size_ < config_.capacity) {
      enqueue(std::move(job));
      return {true, "", std::nullopt};
    }
    if (config_.policy == ShedPolicy::kDeadlineAware) {
      return push_deadline_aware(std::move(job));
    }
    return {false, "queue_full", std::nullopt};
  }

  // Highest priority first, FIFO within a class.
  std::optional<QueuedJob> pop() {
    for (int p = kNumPriorities - 1; p >= 0; --p) {
      auto& lane = lanes_[static_cast<std::size_t>(p)];
      if (lane.empty()) continue;
      QueuedJob job = std::move(lane.front());
      lane.pop_front();
      note_removed(job);
      return job;
    }
    return std::nullopt;
  }

  // Removes and returns the most recently admitted job of the lowest
  // populated priority class — the degradation ladder's final rung (shed
  // lowest priority first; within the class, newest first, since it has
  // waited least).
  std::optional<QueuedJob> shed_lowest() {
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      QueuedJob job = std::move(lane.back());
      lane.pop_back();
      note_removed(job);
      return job;
    }
    return std::nullopt;
  }

 private:
  void enqueue(QueuedJob job) {
    const auto p = static_cast<std::size_t>(job.spec.priority);
    POPBEAN_CHECK(p < lanes_.size());
    ++client_counts_[job.spec.client];
    lanes_[p].push_back(std::move(job));
    ++size_;
  }

  void note_removed(const QueuedJob& job) {
    --size_;
    const auto it = client_counts_.find(job.spec.client);
    if (it != client_counts_.end() && --it->second == 0) {
      client_counts_.erase(it);
    }
  }

  AdmitResult push_deadline_aware(QueuedJob job) {
    const auto now = std::chrono::steady_clock::now();
    // Victim 1: any queued job already past its deadline — it will be
    // answered `timeout` anyway; shedding it now frees the slot for work
    // that can still succeed. Scan low priority lanes first.
    for (auto& lane : lanes_) {
      for (auto it = lane.begin(); it != lane.end(); ++it) {
        if (it->deadline.expired(now)) {
          QueuedJob victim = std::move(*it);
          lane.erase(it);
          note_removed(victim);
          enqueue(std::move(job));
          return {true, "", std::move(victim)};
        }
      }
    }
    // Victim 2: the soonest finite deadline among {queued, incoming} — the
    // job most likely to miss. Unlimited-deadline jobs are never preferred.
    Deadline soonest = job.deadline;
    std::size_t victim_lane = lanes_.size();
    std::deque<QueuedJob>::iterator victim_it;
    for (std::size_t p = 0; p < lanes_.size(); ++p) {
      for (auto it = lanes_[p].begin(); it != lanes_[p].end(); ++it) {
        if (it->deadline.time() < soonest.time()) {
          soonest = it->deadline;
          victim_lane = p;
          victim_it = it;
        }
      }
    }
    if (victim_lane == lanes_.size()) {
      // The incoming job itself has the soonest (or no finite) deadline.
      return {false, "queue_full", std::nullopt};
    }
    QueuedJob victim = std::move(*victim_it);
    lanes_[victim_lane].erase(victim_it);
    note_removed(victim);
    enqueue(std::move(job));
    return {true, "", std::move(victim)};
  }

  AdmissionConfig config_;
  // lanes_[priority]: FIFO per class, indexed by JobPriority's value.
  std::array<std::deque<QueuedJob>, kNumPriorities> lanes_;
  std::map<std::string, std::size_t> client_counts_;
  std::size_t size_ = 0;
};

}  // namespace popbean::serve
