// JobService: the resilient in-process job service (DESIGN.md §9).
//
// One object ties the resilience pieces together around a ThreadPool:
//
//   submit() ──▶ AdmissionQueue (bounded, priority, shed policy)
//                    │ pump: ≤ thread_count jobs in flight, so priority
//                    ▼        is decided at pop time, not submit time
//                CircuitBreaker per protocol (fast-fail `circuit_open`)
//                    ▼
//                attempt loop: run replicates, bounded retries under
//                decorrelated-jitter backoff, per-job Deadline polled
//                cooperatively; a watchdog thread abandons runs that
//                blow deadline + grace without polling (wedged worker)
//                    ▼
//                exactly one terminal JobResponse via the response sink
//
// Overload is answered by a three-rung graceful-degradation ladder driven
// by queue occupancy with hysteresis (high/low watermarks). Voting rides
// the ladder as the first thing sacrificed — redundancy is a luxury an
// overloaded service sheds before it sheds work:
//
//   rung 1  vote replicas k → min(k, 3); statistical replicates → 1
//           (responses flagged `degraded`)
//   rung 2  vote replicas → 1 (unvoted); additionally cap interactions
//           (outcome `truncated`)
//   rung 3  additionally shed queued lowest-priority jobs (`overloaded`)
//
// Shutdown: begin_drain() stops admission; drain(budget) waits for the
// queue and workers, then past the budget cancels cooperatively and
// flushes still-queued jobs as failed("shutdown"). Every admitted job
// still gets its one response.
//
// The chaos hook exists so tests and tools/popbean-stress can inject
// worker faults deterministically: kFail fails the attempt (retryable),
// kSlow wedges the worker without polling the deadline (only the watchdog
// or drain can unstick it — proving the watchdog is load-bearing), and
// kCorrupt runs the replicates under faults::TransientCorruption. The
// hook runs on worker threads and must be thread-safe.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slow_log.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/health.hpp"
#include "serve/job.hpp"
#include "util/backoff.hpp"
#include "util/thread_pool.hpp"

namespace popbean::serve {

enum class ChaosAction {
  kNone,     // run the attempt normally
  kFail,     // the attempt fails immediately (retryable worker fault)
  kSlow,     // wedge the worker for chaos_slow, NOT polling the deadline
  kCorrupt,  // corrupt one replica (all replicates, when voting: only the
             // last replica — a minority of one that the vote outvotes;
             // unvoted jobs corrupt their single replica as before)
  kCorruptAll,  // corrupt every replica — voting cannot recover; exercises
                // the no_majority path deterministically
};

struct ChaosContext {
  const JobSpec& spec;
  std::size_t attempt = 0;        // 0-based attempt index
  std::uint64_t sequence = 0;     // service-wide admission order
};

// Called on worker threads; must be thread-safe and cheap.
using ChaosHook = std::function<ChaosAction(const ChaosContext&)>;

struct DegradationConfig {
  double high_watermark = 0.75;  // occupancy that arms the ladder
  double low_watermark = 0.25;   // occupancy that fully disarms it
  // Dwell time above the high watermark before escalating to the next
  // rung: rung 1 immediately, rung 2 after escalate_after, rung 3 after
  // 2 × escalate_after.
  std::chrono::milliseconds escalate_after{250};
  std::uint64_t truncate_interactions = 50'000;  // rung 2 interaction cap
};

struct ServiceConfig {
  std::size_t threads = 0;  // 0 = hardware concurrency
  AdmissionConfig admission;
  BreakerConfig breaker;
  BackoffPolicy backoff;
  std::size_t max_retries = 2;  // attempts per job ≤ 1 + max_retries
  // Applied when a job's spec carries no deadline; zero means unlimited.
  std::chrono::milliseconds default_deadline{10'000};
  std::chrono::milliseconds drain_deadline{5'000};  // destructor's budget
  DegradationConfig degradation;
  std::uint64_t seed = 0x5e7;        // backoff jitter streams
  std::uint64_t stop_check_interval = 1024;  // cancellation poll period
  std::chrono::milliseconds watchdog_interval{50};
  std::chrono::milliseconds watchdog_grace{250};  // past deadline → abandon
  std::chrono::milliseconds chaos_slow{400};      // length of a kSlow wedge
  double chaos_corrupt_rate = 1e-3;               // kCorrupt fault rate
  ChaosHook chaos;                                // empty = no chaos
  // Replicated voting (DESIGN.md §12): run each attempt on this many
  // replicas with independent RNG streams and majority-vote the decision
  // payload. Must be odd; 1 disables voting and is bit-identical to the
  // unreplicated service (replica 0 reuses the legacy stream layout).
  std::uint32_t vote_replicas = 1;
  // Divergence captures: when a voted attempt's minority replica ran under
  // chaos corruption, re-record it as a §7 .pbsn capture pair here so
  // popbean-replay can reproduce the outvoted execution. Empty = off.
  std::string vote_capture_dir;
  std::size_t vote_capture_limit = 8;  // max capture pairs per service
  // Divergence events (JSONL) land here; must outlive the service.
  obs::TelemetrySink* telemetry = nullptr;
  // External registry (must outlive the service); nullptr = service owns
  // one, readable via metrics().
  obs::MetricsRegistry* metrics = nullptr;
  // Request-scoped tracing (DESIGN.md §13): every job's async span tree is
  // recorded here, keyed by the spec's trace id. nullptr = tracing off.
  // Safe to share across router shards — the collector serializes
  // internally and a fleet reads best on one timeline. Must outlive the
  // service.
  obs::TraceCollector* trace = nullptr;
  // Bounded top-k slow-request log; nullptr = off. Must outlive the
  // service; shareable across shards.
  obs::SlowLog* slow_log = nullptr;
  // Which router shard this service is (0 for an unsharded service); echoed
  // in responses, trace spans, and slow-log entries.
  std::size_t shard_index = 0;
};

class JobService {
 public:
  using Clock = std::chrono::steady_clock;
  // Receives every terminal response, serialized under an internal lock
  // (never concurrently, never while service locks are held — it may call
  // back into health()/metrics(), but must not call submit()/drain()).
  using ResponseFn = std::function<void(const JobResponse&)>;

  JobService(ServiceConfig config, ResponseFn on_response);
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  // Submits one job. Returns true if the job was admitted to the queue;
  // false means an `overloaded` response was already delivered. Either
  // way the job receives exactly one terminal response (an admitted job
  // may still later be shed by the ladder or flushed by drain).
  bool submit(JobSpec spec);

  // Router-facing admission: like submit(), but on rejection returns the
  // reason *instead of* emitting the overloaded response, so a ShardRouter
  // can retry the job on a sibling shard while preserving exactly-one-
  // response (side responses — shed victims — are still emitted here).
  // Returns std::nullopt when the job was admitted.
  std::optional<std::string> try_submit(JobSpec spec);

  // Counts a request line that never parsed into a job (the NDJSON front
  // ends report these; the service itself only sees valid specs).
  void note_invalid();

  // Stops admission; queued and running jobs continue.
  void begin_drain();

  // begin_drain(), then waits up to `budget` for all admitted jobs to
  // reach their terminal response. Past the budget, cancels cooperatively:
  // still-queued jobs are flushed as failed("shutdown") and running jobs
  // observe the cancel flag at their next poll. Returns true if the
  // service drained within the budget, false if it had to cancel.
  bool drain(std::chrono::milliseconds budget);

  HealthSnapshot health() const { return derive_health(metrics_); }
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  std::size_t thread_count() const noexcept { return pool_.thread_count(); }
  int degradation_level() const;
  std::size_t queue_depth() const;
  std::size_t inflight() const;
  // State of the breaker guarding `protocol` (kClosed if never touched).
  CircuitBreaker::State breaker_state(const std::string& protocol) const;
  std::uint64_t total_breaker_opens() const;
  std::uint64_t total_breaker_closes() const;
  // Vote-quarantine state of `protocol`'s family (kVoting if never touched).
  CircuitBreaker::VoteState vote_state(const std::string& protocol) const;
  std::uint64_t total_divergences() const;
  std::uint64_t total_quarantine_entries() const;
  std::uint64_t total_quarantine_recoveries() const;

 private:
  struct ActiveJob {
    Deadline deadline;
    std::atomic<bool> abandon{false};
    std::string id;
    std::uint64_t trace_id = 0;  // for the watchdog's abandon instant
  };

  struct MetricIds {
    obs::CounterId accepted, rejected, invalid, completed, truncated, failed,
        timeouts, retries, shed, circuit_open, watchdog_abandons, voted,
        divergences, no_majority, quarantine_entered, quarantine_recovered,
        quarantined_jobs, captures;
    obs::GaugeId live, draining, queue_depth, queue_capacity, inflight,
        degradation_level, breakers_open, overloaded, quarantined_families;
    obs::HistogramId queue_ms, run_ms;
  };

  static MetricIds register_metrics(obs::MetricsRegistry& registry);

  void emit(JobResponse response);
  JobResponse overloaded_response(std::string id, std::string reason,
                                  std::uint64_t trace_id,
                                  std::uint64_t origin) const;
  // Closes the job's async span tree with its terminal outcome; every
  // admitted job passes through exactly one call (run_job, shed, eviction,
  // or drain flush) — the trace-side face of the exactly-one-response
  // contract.
  void trace_job_end(std::uint64_t trace_id, const char* outcome,
                     const char* reason = nullptr);
  std::optional<std::string> submit_internal(JobSpec spec,
                                             bool emit_rejection);
  // Pops queued jobs into the pool while workers are available, so the
  // admission queue (not the pool's FIFO) decides execution order.
  void pump_locked();
  // Re-evaluates the degradation ladder; returns jobs shed by rung 3
  // (responses must be emitted by the caller after unlocking).
  std::vector<QueuedJob> update_overload_locked(Clock::time_point now);
  void update_gauges_locked();
  void run_job(const QueuedJob& job, ActiveJob& ctx);
  JobResponse execute(const QueuedJob& job, ActiveJob& ctx);
  void sleep_interruptible(Clock::duration duration, const ActiveJob& ctx);
  void watchdog_loop();

  ServiceConfig config_;
  ResponseFn on_response_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry& metrics_;
  MetricIds ids_;

  mutable std::mutex mutex_;  // queue_, breakers_, active_, ladder state
  std::condition_variable idle_cv_;
  AdmissionQueue queue_;
  BreakerBank breakers_;
  std::vector<std::shared_ptr<ActiveJob>> active_;
  std::size_t running_ = 0;
  std::uint64_t next_sequence_ = 0;
  int level_ = 0;  // degradation rung, 0 = healthy
  std::optional<Clock::time_point> overload_since_;
  // Latched overload gauge (health.hpp): enters at the high watermark,
  // exits at the low one — the raw comparison flapped every poll when
  // occupancy hovered at the boundary.
  OverloadHysteresis overload_gauge_;
  std::size_t captures_written_ = 0;  // against vote_capture_limit
  bool draining_ = false;
  std::atomic<bool> cancel_{false};

  std::mutex response_mutex_;  // serializes on_response_

  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  // Declared last: the pool's workers and the watchdog touch everything
  // above, so they are torn down first (explicitly, in the destructor).
  ThreadPool pool_;
  std::thread watchdog_;
};

}  // namespace popbean::serve
