// Job model of the resilient job service (DESIGN.md §9).
//
// A job is one client-requested majority experiment: a protocol, an
// instance (n, ε), a seed, an interaction cap, and a replication count,
// plus the service-facing envelope (id, client, priority, per-job
// deadline). Jobs are deterministic given their spec — replicate r of a
// job always runs on rng stream mix(seed, attempt, r) — so a retried
// attempt re-runs the identical trajectory and retries only ever help
// against *external* interference (chaos injection, a descheduled worker).
//
// Every job submitted to the service receives exactly one terminal
// response:
//
//   done        ran to its own spec (converged, hit its own cap, or halted)
//   truncated   the degradation ladder capped interactions below the spec
//   timeout     the per-job deadline expired (queued or mid-run)
//   failed      worker fault, circuit breaker open, or shutdown drain
//   overloaded  rejected at admission (queue full / quota / draining)
//   invalid     the request line never parsed into a job
//
// The first four are outcomes of *accepted* jobs; the last two are
// rejections. The stress harness's ledger (tools/popbean-stress) holds the
// service to the exactly-one-response contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace popbean::serve {

enum class JobPriority : int { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr int kNumPriorities = 3;

const char* to_string(JobPriority priority);

struct JobSpec {
  std::string id;          // client-chosen, echoed verbatim in the response
  std::string client;      // quota key under ShedPolicy::kClientQuota
  std::string protocol = "avc";  // avc | four-state | three-state
  int m = 3;               // AVC parameters (ignored by the baselines)
  int d = 1;
  std::uint64_t n = 1000;
  double epsilon = 0.02;
  std::uint64_t seed = 1;
  std::uint64_t max_interactions = 0;  // 0 = 500·n (a generous default cap)
  std::uint32_t replicates = 1;
  // Voting replicas for this job: 0 = the service default, otherwise an odd
  // count (validated at the codec and again by ReplicatedExecutor).
  std::uint32_t vote_replicas = 0;
  JobPriority priority = JobPriority::kNormal;
  // Wall-clock budget from admission to terminal response; zero means the
  // service default applies.
  std::chrono::milliseconds deadline{0};
  // Request-scoped trace id (DESIGN.md §13), minted at codec decode (or at
  // admission for directly-submitted specs) and echoed in the response; 0 =
  // untraced. Rides the spec unchanged across shard spills and retries so
  // the whole pipeline lands on one async span tree.
  std::uint64_t trace_id = 0;
  // Opaque front-end routing token (DESIGN.md §14): the TCP server stamps
  // the submitting connection's id here, and every terminal-response site
  // echoes it back unchanged so the response can be steered to the right
  // socket. Never serialized by the codec — it is meaningful only inside
  // the process that minted it (a remote shard re-stamps its own). 0 =
  // no front end (stdin, tests, direct submits).
  std::uint64_t origin = 0;

  std::uint64_t effective_max_interactions() const noexcept {
    return max_interactions != 0 ? max_interactions : 500 * n;
  }
};

enum class JobOutcome {
  kDone,
  kTruncated,
  kTimeout,
  kFailed,
  kOverloaded,
  kInvalid,
};

const char* to_string(JobOutcome outcome);

// Aggregate simulation result over a job's replicates (valid for kDone and
// kTruncated responses).
struct JobResult {
  std::uint32_t replicates_run = 0;
  std::uint32_t converged = 0;
  std::uint32_t correct = 0;
  std::uint32_t wrong = 0;
  std::uint32_t step_limit = 0;
  std::uint32_t absorbing = 0;
  double mean_parallel_time = 0.0;  // over converged replicates
};

struct JobResponse {
  std::string id;
  JobOutcome outcome = JobOutcome::kFailed;
  std::string error;        // reason for failed/overloaded/invalid
  JobResult result;         // meaningful for done/truncated
  std::uint32_t attempts = 0;
  bool degraded = false;    // the ladder shrank replication for this job
  // Replicated-voting labels (response schema v2): how many voting replicas
  // actually ran, whether the result is majority-voted, whether the family
  // was quarantined (forced unvoted), and how many replicas were outvoted.
  std::uint32_t replicas_used = 1;
  bool voted = false;
  bool quarantined = false;
  std::uint32_t divergent = 0;
  double queue_ms = 0.0;    // admission → first attempt start
  double run_ms = 0.0;      // first attempt start → terminal
  // Trace id echoed from the spec (0 = untraced) — the join key between
  // this response line, the Chrome trace file, and histogram exemplars.
  std::uint64_t trace_id = 0;
  // Which router shard served the job (0 for an unsharded JobService); set
  // by ShardRouter so per-connection ledgers can attribute work.
  std::size_t shard = 0;
  // Echo of JobSpec::origin — the connection token the TCP front end uses
  // to route this response back to its socket. Not part of the wire schema.
  std::uint64_t origin = 0;
};

inline const char* to_string(JobPriority priority) {
  switch (priority) {
    case JobPriority::kLow: return "low";
    case JobPriority::kNormal: return "normal";
    case JobPriority::kHigh: return "high";
  }
  return "normal";
}

inline const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kDone: return "done";
    case JobOutcome::kTruncated: return "truncated";
    case JobOutcome::kTimeout: return "timeout";
    case JobOutcome::kFailed: return "failed";
    case JobOutcome::kOverloaded: return "overloaded";
    case JobOutcome::kInvalid: return "invalid";
  }
  return "failed";
}

}  // namespace popbean::serve
