// Per-protocol circuit breaker: closed → open → half-open → closed.
//
// A breaker guards one job family (keyed by protocol name in the service).
// It opens on either trip condition:
//
//   * `failure_threshold` consecutive failures (timeouts count as
//     failures), or
//   * a timeout fraction of at least `timeout_rate_threshold` over the
//     last `window` recorded outcomes (a slow-burn overload that never
//     produces a long consecutive streak).
//
// While open, allow() vetoes execution — jobs fast-fail with
// `circuit_open` instead of burning a worker on a family that is currently
// hopeless (e.g. near-tie AVC instances timing out en masse, cf. the
// ε→1/n wall in the paper's Figure 4). After `cooldown`, the next allow()
// moves the breaker to half-open, which admits up to `half_open_probes`
// probe jobs: any probe failure reopens (and restarts the cooldown);
// `half_open_probes` consecutive probe successes close the breaker and
// clear the history.
//
// Time is always passed in explicitly, so unit tests drive transitions with
// a synthetic clock; the service passes steady_clock::now(). Not
// thread-safe by itself — the service records outcomes under its own lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace popbean::serve {

struct BreakerConfig {
  std::size_t failure_threshold = 5;
  double timeout_rate_threshold = 0.5;
  std::size_t window = 20;
  std::chrono::milliseconds cooldown{2000};
  std::size_t half_open_probes = 2;
  // Vote-quarantine overlay (replicated execution, DESIGN.md §12): a family
  // whose voted runs diverge `quarantine_divergences` times within the last
  // `quarantine_window` voted outcomes is quarantined — it keeps executing,
  // but single-replica and labelled "unvoted". After `quarantine_cooldown`
  // the family enters probation: one clean voted run restores it, another
  // divergence re-quarantines.
  std::size_t quarantine_divergences = 3;
  std::size_t quarantine_window = 20;
  std::chrono::milliseconds quarantine_cooldown{2000};
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kClosed, kOpen, kHalfOpen };

  // Vote-quarantine overlay state, orthogonal to closed/open/half-open:
  // the breaker gates *execution*, quarantine gates *voting*. A quarantined
  // family still runs (single-replica, labelled) — the distinction from a
  // timeout trip is deliberate: divergence means the family's answers
  // cannot be trusted under replication, not that it is too slow to run.
  enum class VoteState { kVoting, kQuarantined, kProbation };

  explicit CircuitBreaker(BreakerConfig config) : config_(config) {
    POPBEAN_CHECK(config.failure_threshold > 0);
    POPBEAN_CHECK(config.window > 0);
    POPBEAN_CHECK(config.half_open_probes > 0);
    POPBEAN_CHECK(config.quarantine_divergences > 0);
    POPBEAN_CHECK(config.quarantine_window > 0);
  }

  // May this job run now? Transitions open → half-open once the cooldown
  // has elapsed. In half-open, admits at most `half_open_probes` probes
  // whose outcomes have not yet been recorded.
  bool allow(Clock::time_point now) {
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now - opened_at_ < config_.cooldown) return false;
        state_ = State::kHalfOpen;
        probes_in_flight_ = 0;
        probe_successes_ = 0;
        ++half_open_transitions_;
        [[fallthrough]];
      case State::kHalfOpen:
        if (probes_in_flight_ >= config_.half_open_probes) return false;
        ++probes_in_flight_;
        return true;
    }
    return true;
  }

  void record_success(Clock::time_point now) { record(now, false, false); }
  void record_failure(Clock::time_point now) { record(now, true, false); }
  void record_timeout(Clock::time_point now) { record(now, true, true); }

  // May this family's jobs be voted right now? Quarantined families move to
  // probation once the quarantine cooldown has elapsed (and are then voted
  // again — the probe vote is the recovery test).
  bool vote_allowed(Clock::time_point now) {
    if (vote_state_ == VoteState::kQuarantined) {
      if (now - quarantined_at_ < config_.quarantine_cooldown) return false;
      vote_state_ = VoteState::kProbation;
      vote_outcomes_.clear();
    }
    return true;
  }

  // A voted attempt disagreed (minority replicas, or no majority at all).
  // Returns true when this divergence newly quarantines the family.
  bool record_divergence(Clock::time_point now) {
    ++divergences_;
    if (vote_state_ == VoteState::kQuarantined) return false;
    if (vote_state_ == VoteState::kProbation) {
      quarantine(now);
      return true;
    }
    vote_outcomes_.push_back(true);
    if (vote_outcomes_.size() > config_.quarantine_window) {
      vote_outcomes_.pop_front();
    }
    std::size_t divergent = 0;
    for (const bool was_divergent : vote_outcomes_) {
      divergent += was_divergent ? 1 : 0;
    }
    if (divergent >= config_.quarantine_divergences) {
      quarantine(now);
      return true;
    }
    return false;
  }

  // A voted attempt was unanimous-or-majority with no minority. Returns
  // true when this vote recovers the family from probation.
  bool record_clean_vote() {
    if (vote_state_ == VoteState::kProbation) {
      vote_state_ = VoteState::kVoting;
      vote_outcomes_.clear();
      ++quarantine_recoveries_;
      return true;
    }
    if (vote_state_ == VoteState::kVoting) {
      vote_outcomes_.push_back(false);
      if (vote_outcomes_.size() > config_.quarantine_window) {
        vote_outcomes_.pop_front();
      }
    }
    return false;
  }

  VoteState vote_state() const noexcept { return vote_state_; }
  std::uint64_t divergences() const noexcept { return divergences_; }
  std::uint64_t quarantine_entries() const noexcept {
    return quarantine_entries_;
  }
  std::uint64_t quarantine_recoveries() const noexcept {
    return quarantine_recoveries_;
  }

  State state() const noexcept { return state_; }
  std::uint64_t opens() const noexcept { return opens_; }
  std::uint64_t half_open_transitions() const noexcept {
    return half_open_transitions_;
  }
  std::uint64_t closes() const noexcept { return closes_; }
  std::size_t consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

 private:
  void record(Clock::time_point now, bool failure, bool timeout) {
    if (state_ == State::kHalfOpen) {
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (failure) {
        open(now);
        return;
      }
      if (++probe_successes_ >= config_.half_open_probes) close();
      return;
    }
    if (state_ == State::kOpen) {
      // A straggler finishing after the breaker opened; its outcome is
      // stale evidence — ignore it.
      return;
    }
    consecutive_failures_ = failure ? consecutive_failures_ + 1 : 0;
    outcomes_.push_back(timeout);
    if (outcomes_.size() > config_.window) outcomes_.pop_front();
    if (consecutive_failures_ >= config_.failure_threshold) {
      open(now);
      return;
    }
    if (outcomes_.size() == config_.window) {
      std::size_t timeouts = 0;
      for (const bool was_timeout : outcomes_) timeouts += was_timeout ? 1 : 0;
      const double rate = static_cast<double>(timeouts) /
                          static_cast<double>(outcomes_.size());
      if (rate >= config_.timeout_rate_threshold) open(now);
    }
  }

  void open(Clock::time_point now) {
    state_ = State::kOpen;
    opened_at_ = now;
    ++opens_;
    consecutive_failures_ = 0;
    outcomes_.clear();
  }

  void close() {
    state_ = State::kClosed;
    ++closes_;
    consecutive_failures_ = 0;
    outcomes_.clear();
  }

  void quarantine(Clock::time_point now) {
    vote_state_ = VoteState::kQuarantined;
    quarantined_at_ = now;
    ++quarantine_entries_;
    vote_outcomes_.clear();
  }

  BreakerConfig config_;
  State state_ = State::kClosed;
  Clock::time_point opened_at_{};
  std::size_t consecutive_failures_ = 0;
  std::deque<bool> outcomes_;  // sliding window; true = timeout
  std::size_t probes_in_flight_ = 0;
  std::size_t probe_successes_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t half_open_transitions_ = 0;
  std::uint64_t closes_ = 0;
  VoteState vote_state_ = VoteState::kVoting;
  Clock::time_point quarantined_at_{};
  std::deque<bool> vote_outcomes_;  // sliding window; true = divergence
  std::uint64_t divergences_ = 0;
  std::uint64_t quarantine_entries_ = 0;
  std::uint64_t quarantine_recoveries_ = 0;
};

inline const char* to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "closed";
}

inline const char* to_string(CircuitBreaker::VoteState state) {
  switch (state) {
    case CircuitBreaker::VoteState::kVoting: return "voting";
    case CircuitBreaker::VoteState::kQuarantined: return "quarantined";
    case CircuitBreaker::VoteState::kProbation: return "probation";
  }
  return "voting";
}

// One breaker per key (the service keys by protocol name), created lazily
// with a shared config.
class BreakerBank {
 public:
  explicit BreakerBank(BreakerConfig config) : config_(config) {}

  CircuitBreaker& for_key(std::string_view key) {
    const auto it = breakers_.find(key);
    if (it != breakers_.end()) return it->second;
    return breakers_.emplace(std::string(key), CircuitBreaker(config_))
        .first->second;
  }

  std::size_t open_count() const noexcept {
    std::size_t open = 0;
    for (const auto& [key, breaker] : breakers_) {
      if (breaker.state() == CircuitBreaker::State::kOpen) ++open;
    }
    return open;
  }

  std::uint64_t total_opens() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [key, breaker] : breakers_) total += breaker.opens();
    return total;
  }

  std::uint64_t total_closes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [key, breaker] : breakers_) total += breaker.closes();
    return total;
  }

  std::size_t quarantined_count() const noexcept {
    std::size_t quarantined = 0;
    for (const auto& [key, breaker] : breakers_) {
      if (breaker.vote_state() != CircuitBreaker::VoteState::kVoting) {
        ++quarantined;
      }
    }
    return quarantined;
  }

  std::uint64_t total_divergences() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [key, breaker] : breakers_) {
      total += breaker.divergences();
    }
    return total;
  }

  std::uint64_t total_quarantine_entries() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [key, breaker] : breakers_) {
      total += breaker.quarantine_entries();
    }
    return total;
  }

  std::uint64_t total_quarantine_recoveries() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [key, breaker] : breakers_) {
      total += breaker.quarantine_recoveries();
    }
    return total;
  }

  const std::map<std::string, CircuitBreaker, std::less<>>& breakers() const {
    return breakers_;
  }

 private:
  BreakerConfig config_;
  std::map<std::string, CircuitBreaker, std::less<>> breakers_;
};

}  // namespace popbean::serve
