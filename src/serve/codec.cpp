#include "serve/codec.hpp"

#include <limits>
#include <sstream>

#include "obs/context.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "zoo/registry.hpp"

namespace popbean::serve {

namespace {

struct FieldError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void bad_field(const std::string& name, const std::string& why) {
  throw FieldError("field \"" + name + "\": " + why);
}

std::uint64_t require_u64(const JsonValue& v, const std::string& name,
                          std::uint64_t min = 0,
                          std::uint64_t max =
                              std::numeric_limits<std::uint64_t>::max()) {
  if (!v.is_number()) bad_field(name, "expected a number");
  std::uint64_t out = 0;
  try {
    out = v.as_u64();
  } catch (const JsonParseError&) {
    bad_field(name, "expected a non-negative integer");
  }
  if (out < min || out > max) bad_field(name, "out of range");
  return out;
}

double require_double(const JsonValue& v, const std::string& name) {
  if (!v.is_number()) bad_field(name, "expected a number");
  return v.as_double();
}

const std::string& require_string(const JsonValue& v, const std::string& name) {
  if (!v.is_string()) bad_field(name, "expected a string");
  return v.as_string();
}

bool require_bool(const JsonValue& v, const std::string& name) {
  if (!v.is_bool()) bad_field(name, "expected a boolean");
  return v.as_bool();
}

bool outcome_from_string(const std::string& text, JobOutcome* out) {
  if (text == "done") *out = JobOutcome::kDone;
  else if (text == "truncated") *out = JobOutcome::kTruncated;
  else if (text == "timeout") *out = JobOutcome::kTimeout;
  else if (text == "failed") *out = JobOutcome::kFailed;
  else if (text == "overloaded") *out = JobOutcome::kOverloaded;
  else if (text == "invalid") *out = JobOutcome::kInvalid;
  else return false;
  return true;
}

JobPriority parse_priority(const std::string& text) {
  if (text == "low") return JobPriority::kLow;
  if (text == "normal") return JobPriority::kNormal;
  if (text == "high") return JobPriority::kHigh;
  bad_field("priority", "expected \"low\", \"normal\", or \"high\"");
}

JobSpec spec_from_object(const JsonValue& object) {
  JobSpec spec;
  bool saw_version = false;
  for (const auto& [key, value] : object.members()) {
    if (key == "v") {
      const std::uint64_t version = require_u64(value, key);
      if (version < kMinProtocolVersion || version > kProtocolVersion) {
        bad_field(key, "unsupported protocol version " +
                           std::to_string(version));
      }
      saw_version = true;
    } else if (key == "id") {
      spec.id = require_string(value, key);
      if (spec.id.empty()) bad_field(key, "must not be empty");
    } else if (key == "client") {
      spec.client = require_string(value, key);
    } else if (key == "protocol") {
      spec.protocol = require_string(value, key);
      if (zoo::is_zoo_spec(spec.protocol)) {
        // "zoo:<...>" resolves against the zoo registry; anything it does
        // not know is rejected here with the member list, so a typo'd spec
        // never reaches a worker.
        if (!zoo::is_zoo_member(spec.protocol)) {
          bad_field(key, "unknown zoo protocol \"" + spec.protocol +
                             "\" (known: " + zoo::zoo_known_list() + ")");
        }
      } else if (spec.protocol != "avc" && spec.protocol != "four-state" &&
                 spec.protocol != "three-state") {
        bad_field(key, "unknown protocol \"" + spec.protocol + "\"");
      }
    } else if (key == "m") {
      spec.m = static_cast<int>(require_u64(value, key, 1, 64));
    } else if (key == "d") {
      spec.d = static_cast<int>(require_u64(value, key, 1, 64));
    } else if (key == "n") {
      spec.n = require_u64(value, key, 2);
    } else if (key == "eps") {
      spec.epsilon = require_double(value, key);
      if (!(spec.epsilon > 0.0 && spec.epsilon <= 1.0)) {
        bad_field(key, "must be in (0, 1]");
      }
    } else if (key == "seed") {
      spec.seed = require_u64(value, key);
    } else if (key == "max_interactions") {
      spec.max_interactions = require_u64(value, key);
    } else if (key == "replicates") {
      spec.replicates =
          static_cast<std::uint32_t>(require_u64(value, key, 1, 100000));
    } else if (key == "replicas") {
      // Per-job voting replica override (v2). Must be odd: an even replica
      // set can split its vote with no majority on either side.
      spec.vote_replicas =
          static_cast<std::uint32_t>(require_u64(value, key, 1, 101));
      if (spec.vote_replicas % 2 == 0) {
        bad_field(key, "must be odd (even replica counts can tie)");
      }
    } else if (key == "priority") {
      spec.priority = parse_priority(require_string(value, key));
    } else if (key == "deadline_ms") {
      spec.deadline = std::chrono::milliseconds(static_cast<std::int64_t>(
          require_u64(value, key, 0,
                      static_cast<std::uint64_t>(
                          std::numeric_limits<std::int64_t>::max() / 2))));
    } else if (key == "trace_id") {
      // Caller-supplied trace id (v2): lets an upstream proxy link its own
      // trace to ours. 0 (or absent) means "mint one at decode".
      spec.trace_id = require_u64(value, key);
    } else {
      bad_field(key, "unknown field");
    }
  }
  if (!saw_version) {
    bad_field("v", "missing (this build speaks v" +
                       std::to_string(kMinProtocolVersion) + "–v" +
                       std::to_string(kProtocolVersion) + ")");
  }
  if (spec.id.empty()) bad_field("id", "missing");
  return spec;
}

}  // namespace

ParsedRequest parse_job_request(std::string_view line) {
  JsonValue root;
  try {
    root = JsonValue::parse(line);
  } catch (const JsonParseError& e) {
    return RequestError{"", std::string("malformed JSON: ") + e.what()};
  }
  if (!root.is_object()) {
    return RequestError{"", "request must be a JSON object"};
  }
  // Best-effort id extraction so even a rejected request can be correlated.
  std::string id;
  if (const JsonValue* id_value = root.find("id");
      id_value != nullptr && id_value->is_string()) {
    id = id_value->as_string();
  }
  try {
    return spec_from_object(root);
  } catch (const FieldError& e) {
    return RequestError{id, e.what()};
  }
}

std::string job_request_line(const JobSpec& spec) {
  std::ostringstream buffer;
  JsonWriter json(buffer);
  json.begin_object();
  json.kv("v", kProtocolVersion);
  json.kv("id", spec.id);
  if (!spec.client.empty()) json.kv("client", spec.client);
  if (spec.protocol != "avc") json.kv("protocol", spec.protocol);
  if (spec.m != 3) json.kv("m", static_cast<std::uint64_t>(spec.m));
  if (spec.d != 1) json.kv("d", static_cast<std::uint64_t>(spec.d));
  json.kv("n", spec.n);
  json.kv("eps", spec.epsilon);
  json.kv("seed", spec.seed);
  if (spec.max_interactions != 0) {
    json.kv("max_interactions", spec.max_interactions);
  }
  if (spec.replicates != 1) {
    json.kv("replicates", static_cast<std::uint64_t>(spec.replicates));
  }
  if (spec.vote_replicas != 0) {
    json.kv("replicas", static_cast<std::uint64_t>(spec.vote_replicas));
  }
  if (spec.priority != JobPriority::kNormal) {
    json.kv("priority", to_string(spec.priority));
  }
  if (spec.deadline.count() != 0) {
    json.kv("deadline_ms", static_cast<std::uint64_t>(spec.deadline.count()));
  }
  if (spec.trace_id != 0) json.kv("trace_id", spec.trace_id);
  json.end_object();
  return json_single_line(buffer.str());
}

std::optional<JobResponse> parse_job_response(std::string_view line,
                                              std::string* error) {
  const auto fail = [error](std::string why) -> std::optional<JobResponse> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };
  JsonValue root;
  try {
    root = JsonValue::parse(line);
  } catch (const JsonParseError& e) {
    return fail(std::string("malformed JSON: ") + e.what());
  }
  if (!root.is_object()) return fail("response must be a JSON object");
  JobResponse response;
  bool saw_version = false;
  bool saw_id = false;
  bool saw_outcome = false;
  try {
    for (const auto& [key, value] : root.members()) {
      if (key == "v") {
        const std::uint64_t version = require_u64(value, key);
        if (version < kMinProtocolVersion || version > kProtocolVersion) {
          bad_field(key, "unsupported protocol version " +
                             std::to_string(version));
        }
        saw_version = true;
      } else if (key == "id") {
        // Unlike requests, an EMPTY id is legal here: server-synthesized
        // rejections (garbage frames, admission refusals) are not
        // attributable to any job and ship with id "".
        response.id = require_string(value, key);
        saw_id = true;
      } else if (key == "outcome") {
        const std::string& text = require_string(value, key);
        if (!outcome_from_string(text, &response.outcome)) {
          bad_field(key, "unknown outcome \"" + text + "\"");
        }
        saw_outcome = true;
      } else if (key == "error") {
        response.error = require_string(value, key);
      } else if (key == "attempts") {
        response.attempts = static_cast<std::uint32_t>(
            require_u64(value, key, 0, 1'000'000));
      } else if (key == "degraded") {
        response.degraded = require_bool(value, key);
      } else if (key == "replicas_used") {
        response.replicas_used = static_cast<std::uint32_t>(
            require_u64(value, key, 0, 1'000'000));
      } else if (key == "voted") {
        response.voted = require_bool(value, key);
      } else if (key == "quarantined") {
        response.quarantined = require_bool(value, key);
      } else if (key == "divergent") {
        response.divergent = static_cast<std::uint32_t>(
            require_u64(value, key, 0, 1'000'000));
      } else if (key == "queue_ms") {
        response.queue_ms = require_double(value, key);
      } else if (key == "run_ms") {
        response.run_ms = require_double(value, key);
      } else if (key == "trace_id") {
        response.trace_id = require_u64(value, key);
      } else if (key == "shard") {
        response.shard =
            static_cast<std::size_t>(require_u64(value, key));
      } else if (key == "result") {
        if (!value.is_object()) bad_field(key, "expected an object");
        for (const auto& [rkey, rvalue] : value.members()) {
          if (rkey == "replicates") {
            response.result.replicates_run =
                static_cast<std::uint32_t>(require_u64(rvalue, rkey));
          } else if (rkey == "converged") {
            response.result.converged =
                static_cast<std::uint32_t>(require_u64(rvalue, rkey));
          } else if (rkey == "correct") {
            response.result.correct =
                static_cast<std::uint32_t>(require_u64(rvalue, rkey));
          } else if (rkey == "wrong") {
            response.result.wrong =
                static_cast<std::uint32_t>(require_u64(rvalue, rkey));
          } else if (rkey == "step_limit") {
            response.result.step_limit =
                static_cast<std::uint32_t>(require_u64(rvalue, rkey));
          } else if (rkey == "absorbing") {
            response.result.absorbing =
                static_cast<std::uint32_t>(require_u64(rvalue, rkey));
          } else if (rkey == "mean_parallel_time") {
            response.result.mean_parallel_time = require_double(rvalue, rkey);
          } else {
            bad_field("result." + rkey, "unknown field");
          }
        }
      } else {
        bad_field(key, "unknown field");
      }
    }
  } catch (const FieldError& e) {
    return fail(e.what());
  }
  if (!saw_version) return fail("field \"v\": missing");
  if (!saw_id) return fail("field \"id\": missing");
  if (!saw_outcome) return fail("field \"outcome\": missing");
  return response;
}

ParsedRequest RequestReader::next(std::string_view line,
                                  std::uint64_t framed_size) {
  const std::uint64_t line_offset = offset_;
  offset_ += framed_size;
  ParsedRequest parsed = parse_job_request(line);
  if (JobSpec* spec = std::get_if<JobSpec>(&parsed)) {
    const auto it = first_use_.find(spec->id);
    if (it != first_use_.end()) {
      return RequestError{
          spec->id, "duplicate job id \"" + spec->id + "\": first used at "
                        "byte " + std::to_string(it->second) +
                        ", duplicated at byte " + std::to_string(line_offset)};
    }
    first_use_.emplace(spec->id, line_offset);
    // Trace minting happens here, at decode (DESIGN.md §13): the id exists
    // before admission, so even a shed or invalid-deadline rejection is
    // attributable to a trace.
    if (spec->trace_id == 0) spec->trace_id = obs::mint_trace_id();
  }
  return parsed;
}

void write_job_response(std::ostream& os, const JobResponse& response) {
  std::ostringstream buffer;
  JsonWriter json(buffer);
  json.begin_object();
  json.kv("v", kProtocolVersion);
  json.kv("id", response.id);
  json.kv("outcome", to_string(response.outcome));
  if (!response.error.empty()) json.kv("error", response.error);
  json.kv("attempts", static_cast<std::uint64_t>(response.attempts));
  json.kv("degraded", response.degraded);
  json.kv("replicas_used", static_cast<std::uint64_t>(response.replicas_used));
  json.kv("voted", response.voted);
  json.kv("quarantined", response.quarantined);
  json.kv("divergent", static_cast<std::uint64_t>(response.divergent));
  json.kv("queue_ms", response.queue_ms);
  json.kv("run_ms", response.run_ms);
  // v2 observability labels (additive): the trace id joins this line to the
  // Chrome trace file; shard attributes the work to a router shard.
  json.kv("trace_id", response.trace_id);
  json.kv("shard", response.shard);
  if (response.outcome == JobOutcome::kDone ||
      response.outcome == JobOutcome::kTruncated) {
    json.key("result");
    json.begin_object();
    json.kv("replicates", static_cast<std::uint64_t>(response.result.replicates_run));
    json.kv("converged", static_cast<std::uint64_t>(response.result.converged));
    json.kv("correct", static_cast<std::uint64_t>(response.result.correct));
    json.kv("wrong", static_cast<std::uint64_t>(response.result.wrong));
    json.kv("step_limit", static_cast<std::uint64_t>(response.result.step_limit));
    json.kv("absorbing", static_cast<std::uint64_t>(response.result.absorbing));
    json.kv("mean_parallel_time", response.result.mean_parallel_time);
    json.end_object();
  }
  json.end_object();
  os << json_single_line(buffer.str()) << "\n";
}

std::string job_response_line(const JobResponse& response) {
  std::ostringstream os;
  write_job_response(os, response);
  return os.str();
}

}  // namespace popbean::serve
