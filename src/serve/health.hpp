// Liveness / readiness / overload snapshots for the job service, derived
// from the obs::MetricsRegistry the service records into (DESIGN.md §9).
//
// The service continuously maintains "serve.*" counters and gauges; a
// health probe is a pure read of a registry snapshot — no service lock, no
// coupling to JobService internals, and the same numbers land in
// --metrics-out files, so a dashboard and a health check can never
// disagree about what the service believes.
//
//   live        the service object exists and is publishing gauges
//   ready       accepting new jobs (not draining)
//   overloaded  the admission queue has crossed the overload hysteresis
//               band (entered above the ladder's high watermark, not yet
//               back below the low watermark), or any breaker is open
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace popbean::serve {

// Two-threshold overload latch. The raw occupancy comparison
// (occupancy >= high ? 1 : 0) flaps on every poll when load hovers at the
// boundary — each 1→0→1 edge looks like a fresh overload event to anything
// watching the health endpoint. The latch enters overload at `enter`, exits
// only at or below `exit`, and holds its last state in between, so one
// sustained episode reads as one transition pair.
class OverloadHysteresis {
 public:
  OverloadHysteresis(double enter, double exit) : enter_(enter), exit_(exit) {
    POPBEAN_CHECK_MSG(exit <= enter,
                      "overload hysteresis exit threshold must not exceed "
                      "the enter threshold");
  }

  bool update(double occupancy) {
    if (occupancy >= enter_) {
      overloaded_ = true;
    } else if (occupancy <= exit_) {
      overloaded_ = false;
    }
    return overloaded_;
  }

  bool overloaded() const noexcept { return overloaded_; }
  double enter_threshold() const noexcept { return enter_; }
  double exit_threshold() const noexcept { return exit_; }

 private:
  double enter_;
  double exit_;
  bool overloaded_ = false;
};

struct HealthSnapshot {
  bool live = false;
  bool ready = false;
  bool overloaded = false;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t inflight = 0;
  int degradation_level = 0;
  std::size_t breakers_open = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t invalid = 0;
  std::uint64_t completed = 0;   // done + truncated
  std::uint64_t truncated = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t shed = 0;        // queued jobs evicted by ladder/policy
  // Replicated-voting health (DESIGN.md §12).
  std::uint64_t voted = 0;             // voted attempts (k > 1)
  std::uint64_t divergences = 0;       // voted attempts with a minority
  std::uint64_t no_majority = 0;       // voted attempts with no winner
  std::uint64_t quarantine_entered = 0;
  std::uint64_t quarantine_recovered = 0;
  std::uint64_t quarantined_jobs = 0;  // jobs forced unvoted by quarantine
  std::size_t quarantined_families = 0;
};

namespace detail {

inline std::uint64_t counter_value(const obs::MetricsRegistry::Snapshot& snap,
                                   std::string_view name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

inline double gauge_value(const obs::MetricsRegistry::Snapshot& snap,
                          std::string_view name, double fallback = 0.0) {
  for (const auto& [gauge_name, value] : snap.gauges) {
    if (gauge_name == name) return value;
  }
  return fallback;
}

}  // namespace detail

// Builds a health view from a registry snapshot. A registry that has never
// seen a service (no serve.live gauge) reports !live, !ready.
inline HealthSnapshot derive_health(const obs::MetricsRegistry& registry) {
  const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
  HealthSnapshot health;
  health.live = detail::gauge_value(snap, "serve.live") > 0.5;
  health.ready =
      health.live && detail::gauge_value(snap, "serve.draining") < 0.5;
  health.queue_depth =
      static_cast<std::size_t>(detail::gauge_value(snap, "serve.queue_depth"));
  health.queue_capacity = static_cast<std::size_t>(
      detail::gauge_value(snap, "serve.queue_capacity"));
  health.inflight =
      static_cast<std::size_t>(detail::gauge_value(snap, "serve.inflight"));
  health.degradation_level =
      static_cast<int>(detail::gauge_value(snap, "serve.degradation_level"));
  health.breakers_open =
      static_cast<std::size_t>(detail::gauge_value(snap, "serve.breakers_open"));
  health.overloaded = detail::gauge_value(snap, "serve.overloaded") > 0.5 ||
                      health.breakers_open > 0;
  health.accepted = detail::counter_value(snap, "serve.accepted");
  health.rejected = detail::counter_value(snap, "serve.rejected");
  health.invalid = detail::counter_value(snap, "serve.invalid");
  health.completed = detail::counter_value(snap, "serve.completed");
  health.truncated = detail::counter_value(snap, "serve.truncated");
  health.failed = detail::counter_value(snap, "serve.failed");
  health.timeouts = detail::counter_value(snap, "serve.timeouts");
  health.retries = detail::counter_value(snap, "serve.retries");
  health.shed = detail::counter_value(snap, "serve.shed");
  health.voted = detail::counter_value(snap, "serve.vote.voted");
  health.divergences = detail::counter_value(snap, "serve.vote.divergences");
  health.no_majority = detail::counter_value(snap, "serve.vote.no_majority");
  health.quarantine_entered =
      detail::counter_value(snap, "serve.vote.quarantine_entered");
  health.quarantine_recovered =
      detail::counter_value(snap, "serve.vote.quarantine_recovered");
  health.quarantined_jobs =
      detail::counter_value(snap, "serve.vote.quarantined_jobs");
  health.quarantined_families = static_cast<std::size_t>(
      detail::gauge_value(snap, "serve.vote.quarantined_families"));
  return health;
}

inline void write_health_json(JsonWriter& json, const HealthSnapshot& health) {
  json.begin_object();
  json.kv("live", health.live);
  json.kv("ready", health.ready);
  json.kv("overloaded", health.overloaded);
  json.kv("queue_depth", health.queue_depth);
  json.kv("queue_capacity", health.queue_capacity);
  json.kv("inflight", health.inflight);
  json.kv("degradation_level",
          static_cast<std::int64_t>(health.degradation_level));
  json.kv("breakers_open", health.breakers_open);
  json.kv("accepted", health.accepted);
  json.kv("rejected", health.rejected);
  json.kv("invalid", health.invalid);
  json.kv("completed", health.completed);
  json.kv("truncated", health.truncated);
  json.kv("failed", health.failed);
  json.kv("timeouts", health.timeouts);
  json.kv("retries", health.retries);
  json.kv("shed", health.shed);
  json.kv("voted", health.voted);
  json.kv("divergences", health.divergences);
  json.kv("no_majority", health.no_majority);
  json.kv("quarantine_entered", health.quarantine_entered);
  json.kv("quarantine_recovered", health.quarantine_recovered);
  json.kv("quarantined_jobs", health.quarantined_jobs);
  json.kv("quarantined_families", health.quarantined_families);
  json.end_object();
}

}  // namespace popbean::serve
