// Liveness / readiness / overload snapshots for the job service, derived
// from the obs::MetricsRegistry the service records into (DESIGN.md §9).
//
// The service continuously maintains "serve.*" counters and gauges; a
// health probe is a pure read of a registry snapshot — no service lock, no
// coupling to JobService internals, and the same numbers land in
// --metrics-out files, so a dashboard and a health check can never
// disagree about what the service believes.
//
//   live        the service object exists and is publishing gauges
//   ready       accepting new jobs (not draining)
//   overloaded  the admission queue is above the degradation ladder's high
//               watermark, or any circuit breaker is open
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace popbean::serve {

struct HealthSnapshot {
  bool live = false;
  bool ready = false;
  bool overloaded = false;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t inflight = 0;
  int degradation_level = 0;
  std::size_t breakers_open = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t invalid = 0;
  std::uint64_t completed = 0;   // done + truncated
  std::uint64_t truncated = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t shed = 0;        // queued jobs evicted by ladder/policy
};

namespace detail {

inline std::uint64_t counter_value(const obs::MetricsRegistry::Snapshot& snap,
                                   std::string_view name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

inline double gauge_value(const obs::MetricsRegistry::Snapshot& snap,
                          std::string_view name, double fallback = 0.0) {
  for (const auto& [gauge_name, value] : snap.gauges) {
    if (gauge_name == name) return value;
  }
  return fallback;
}

}  // namespace detail

// Builds a health view from a registry snapshot. A registry that has never
// seen a service (no serve.live gauge) reports !live, !ready.
inline HealthSnapshot derive_health(const obs::MetricsRegistry& registry) {
  const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
  HealthSnapshot health;
  health.live = detail::gauge_value(snap, "serve.live") > 0.5;
  health.ready =
      health.live && detail::gauge_value(snap, "serve.draining") < 0.5;
  health.queue_depth =
      static_cast<std::size_t>(detail::gauge_value(snap, "serve.queue_depth"));
  health.queue_capacity = static_cast<std::size_t>(
      detail::gauge_value(snap, "serve.queue_capacity"));
  health.inflight =
      static_cast<std::size_t>(detail::gauge_value(snap, "serve.inflight"));
  health.degradation_level =
      static_cast<int>(detail::gauge_value(snap, "serve.degradation_level"));
  health.breakers_open =
      static_cast<std::size_t>(detail::gauge_value(snap, "serve.breakers_open"));
  health.overloaded = detail::gauge_value(snap, "serve.overloaded") > 0.5 ||
                      health.breakers_open > 0;
  health.accepted = detail::counter_value(snap, "serve.accepted");
  health.rejected = detail::counter_value(snap, "serve.rejected");
  health.invalid = detail::counter_value(snap, "serve.invalid");
  health.completed = detail::counter_value(snap, "serve.completed");
  health.truncated = detail::counter_value(snap, "serve.truncated");
  health.failed = detail::counter_value(snap, "serve.failed");
  health.timeouts = detail::counter_value(snap, "serve.timeouts");
  health.retries = detail::counter_value(snap, "serve.retries");
  health.shed = detail::counter_value(snap, "serve.shed");
  return health;
}

inline void write_health_json(JsonWriter& json, const HealthSnapshot& health) {
  json.begin_object();
  json.kv("live", health.live);
  json.kv("ready", health.ready);
  json.kv("overloaded", health.overloaded);
  json.kv("queue_depth", health.queue_depth);
  json.kv("queue_capacity", health.queue_capacity);
  json.kv("inflight", health.inflight);
  json.kv("degradation_level",
          static_cast<std::int64_t>(health.degradation_level));
  json.kv("breakers_open", health.breakers_open);
  json.kv("accepted", health.accepted);
  json.kv("rejected", health.rejected);
  json.kv("invalid", health.invalid);
  json.kv("completed", health.completed);
  json.kv("truncated", health.truncated);
  json.kv("failed", health.failed);
  json.kv("timeouts", health.timeouts);
  json.kv("retries", health.retries);
  json.kv("shed", health.shed);
  json.end_object();
}

}  // namespace popbean::serve
