// Replicated voting execution: run a job on k replicas with independent RNG
// streams and majority-vote the decision payloads, hailburst-style
// (vochart.c `vote_memory`: a replica's output counts only if its bytes
// match a strict majority of the replica set; an absent/aborted replica
// matches nothing).
//
// The voted payload is the *decision*, not the statistics. For an exact
// majority protocol every fault-free execution decides the correct output
// regardless of the RNG stream, so healthy replicas produce bit-identical
// payloads even though their trajectories (interactions, parallel time)
// differ; a corrupted replica that converges to the wrong answer — or fails
// to converge at all — produces different bytes and is outvoted. Stream-
// dependent statistics are reported from the winning replica only.
//
// Canonical payload format (little-endian, 2 bytes per statistical
// replicate, replicates in submission order):
//
//   byte 0: RunStatus   (0 converged / 1 step-limit / 2 absorbing)
//   byte 1: decision    (0 or 1 when converged, 0xff otherwise)
//
// Replica RNG streams: replica j's replicate r of attempt a draws from
// `Xoshiro256ss(spec.seed, replica_stream(a, r, j))`. Replica 0 reproduces
// the single-run stream layout exactly, so k = 1 is bit-identical to
// unreplicated execution, and any replica is reproducible offline from its
// (seed, stream) pair via recovery::record_perturbed_run / popbean-replay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "population/run.hpp"
#include "serve/job.hpp"
#include "util/check.hpp"

namespace popbean::serve {

// Stream id for (attempt, statistical replicate, voting replica). The low
// 48 bits carry the pre-voting layout (attempt * 1'000'003 + replicate); the
// replica index occupies the top 16 bits so replica 0 is stream-compatible
// with unreplicated builds.
inline std::uint64_t replica_stream(std::uint64_t attempt, std::uint32_t replicate,
                                    std::uint32_t replica) {
  return (static_cast<std::uint64_t>(replica) << 48) |
         ((attempt * 1'000'003ULL + replicate) & ((1ULL << 48) - 1));
}

// One replica's voted bytes plus the stats needed if it wins the vote.
struct ReplicaPayload {
  std::vector<std::uint8_t> bytes;  // canonical decision payload
  JobResult result;                 // aggregated stats across replicates
  bool corrupt = false;             // ran under chaos corruption
  // Per-replicate streams, parallel to 2-byte payload groups; used to name
  // the exact diverging run in telemetry/captures.
  std::vector<std::uint64_t> streams;
};

inline void append_decision(std::vector<std::uint8_t>& bytes,
                            const RunResult& run) {
  bytes.push_back(static_cast<std::uint8_t>(run.status));
  const bool converged = run.status == RunStatus::kConverged;
  bytes.push_back(converged ? static_cast<std::uint8_t>(run.decided ? 1 : 0)
                            : std::uint8_t{0xff});
}

// Outcome of a majority vote over k replica slots. Slots holding
// std::nullopt are abandoned replicas (deadline-killed or shutdown) and
// match nothing, per the hailburst convention.
struct VoteOutcome {
  bool voted = false;          // k > 1 (a real vote happened)
  bool majority_found = false;
  std::uint32_t winner = 0;    // index of first majority member (if found)
  std::uint32_t agreeing = 0;  // replicas matching the winner (incl. itself)
  std::uint32_t divergent = 0; // non-null replicas disagreeing with winner
  std::uint32_t abandoned = 0; // null replicas
  std::vector<std::uint32_t> minority;  // indices of divergent replicas
};

// vote_memory-style majority: winner needs >= (1 + k) / 2 matching replicas
// out of the full slot count k (nulls never match, but still count toward
// the denominator — three replicas with one killed still need 2 votes).
inline VoteOutcome vote_payloads(
    const std::vector<std::optional<ReplicaPayload>>& replicas) {
  POPBEAN_CHECK(!replicas.empty());
  VoteOutcome outcome;
  const std::uint32_t k = static_cast<std::uint32_t>(replicas.size());
  outcome.voted = k > 1;
  const std::uint32_t needed = (1 + k) / 2;
  for (const auto& replica : replicas) {
    if (!replica) ++outcome.abandoned;
  }
  // Fast path: every slot present and byte-identical — unanimous.
  bool unanimous = outcome.abandoned == 0;
  for (std::uint32_t j = 1; unanimous && j < k; ++j) {
    unanimous = replicas[j]->bytes == replicas[0]->bytes;
  }
  if (unanimous) {
    outcome.majority_found = true;
    outcome.winner = 0;
    outcome.agreeing = k;
    return outcome;
  }
  // General case: count matches for each candidate until one clears the
  // threshold (k is small — this is the hailburst pairwise scan).
  for (std::uint32_t cand = 0; cand < k; ++cand) {
    if (!replicas[cand]) continue;
    std::uint32_t matches = 0;
    for (std::uint32_t j = 0; j < k; ++j) {
      if (replicas[j] && replicas[j]->bytes == replicas[cand]->bytes) ++matches;
    }
    if (matches >= needed) {
      outcome.majority_found = true;
      outcome.winner = cand;
      outcome.agreeing = matches;
      for (std::uint32_t j = 0; j < k; ++j) {
        if (replicas[j] && replicas[j]->bytes != replicas[cand]->bytes) {
          ++outcome.divergent;
          outcome.minority.push_back(j);
        }
      }
      return outcome;
    }
  }
  // No majority: every non-null replica is in a minority.
  for (std::uint32_t j = 0; j < k; ++j) {
    if (replicas[j]) {
      ++outcome.divergent;
      outcome.minority.push_back(j);
    }
  }
  return outcome;
}

// Index (within the winner/minority payload pair) of the first statistical
// replicate whose 2-byte decision group differs; used to pick which exact
// run to capture for replay. Returns nullopt for equal or malformed pairs.
inline std::optional<std::uint32_t> first_diverging_replicate(
    const ReplicaPayload& winner, const ReplicaPayload& minority) {
  const std::size_t groups =
      std::min(winner.bytes.size(), minority.bytes.size()) / 2;
  for (std::size_t g = 0; g < groups; ++g) {
    if (winner.bytes[2 * g] != minority.bytes[2 * g] ||
        winner.bytes[2 * g + 1] != minority.bytes[2 * g + 1]) {
      return static_cast<std::uint32_t>(g);
    }
  }
  if (winner.bytes.size() != minority.bytes.size()) {
    return static_cast<std::uint32_t>(groups);
  }
  return std::nullopt;
}

// Runs up to `replicas` slots sequentially on the calling worker thread and
// votes. The runner is called with the replica index and returns the
// payload, or std::nullopt for an abandoned replica (deadline / shutdown);
// abandonment of slot j skips slots j+1.. only if a majority is already
// impossible — otherwise later replicas still run so a vote can survive one
// killed worker.
class ReplicatedExecutor {
 public:
  explicit ReplicatedExecutor(std::uint32_t replicas) : replicas_(replicas) {
    POPBEAN_CHECK_MSG(replicas >= 1 && replicas % 2 == 1,
                      "vote replica count must be odd (even k cannot break "
                      "ties)");
  }

  std::uint32_t replicas() const noexcept { return replicas_; }

  template <typename RunReplicaFn>
  VoteOutcome execute(std::vector<std::optional<ReplicaPayload>>& slots,
                      RunReplicaFn&& run_replica) const {
    slots.clear();
    slots.resize(replicas_);
    std::uint32_t abandoned = 0;
    for (std::uint32_t j = 0; j < replicas_; ++j) {
      // Once a majority of slots is gone no vote can succeed; stop burning
      // worker time on a job that is already past its deadline.
      if (abandoned >= (1 + replicas_) / 2) break;
      slots[j] = run_replica(j);
      if (!slots[j]) ++abandoned;
    }
    return vote_payloads(slots);
  }

 private:
  std::uint32_t replicas_;
};

}  // namespace popbean::serve
