// Runtime<Z> — adapts a programmatic CodeProtocol to the engines'
// ProtocolLike interface (DESIGN.md §11).
//
// Construction seeds the state universe with the two initial codes and
// interns the pairwise-reachable closure under δ (zoo/universe.hpp), after
// which the universe is frozen: the runtime presents a fixed dense state
// space exactly like a tabulated protocol, but apply() *computes* each
// transition — decode the raw codes, run the member's δ, re-encode — so no
// s² table ever exists. All three engines accept a Runtime directly; the
// count engine is the natural host (O(log s) sampling, O(s) memory), while
// the skip engine tabulates internally and so inherits its own state cap.
//
// Decoding is a flat array lookup (raw codes are small packed integers),
// and outputs are cached per dense id, so the per-interaction overhead vs
// a table lookup is the δ computation itself — measured by the
// engine_microbench zoo cases.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/probe.hpp"
#include "population/protocol.hpp"
#include "population/protocol_identity.hpp"
#include "util/check.hpp"
#include "zoo/code_protocol.hpp"
#include "zoo/universe.hpp"

namespace popbean::zoo {

template <CodeProtocol Z>
class Runtime {
 public:
  explicit Runtime(Z member) : member_(std::move(member)) {
    initial_[0] = universe_.intern(member_.initial_code(Opinion::B));
    initial_[1] = universe_.intern(member_.initial_code(Opinion::A));
    close_over_pairs(
        universe_,
        [this](std::uint32_t a, std::uint32_t b) {
          return member_.delta(a, b);
        },
        member_.max_states());

    // Dense decode table: the closure is frozen, so code → id becomes one
    // bounds-checked array read on the apply() hot path.
    std::uint32_t max_code = 0;
    for (const std::uint32_t code : universe_.codes()) {
      max_code = std::max(max_code, code);
    }
    POPBEAN_CHECK_MSG(max_code < kMaxRawCode,
                      "packed codes too wide for the dense decode table");
    code_to_id_.assign(static_cast<std::size_t>(max_code) + 1, kUnmapped);
    outputs_.resize(universe_.size());
    for (State id = 0; id < universe_.size(); ++id) {
      code_to_id_[universe_.code_of(id)] = id;
      outputs_[id] = member_.output_code(universe_.code_of(id));
    }
    identity_ = "zoo:" + member_.name() + "/" + protocol_fingerprint(*this);
  }

  std::size_t num_states() const noexcept { return universe_.size(); }

  State initial_state(Opinion opinion) const noexcept {
    return initial_[opinion == Opinion::A ? 1 : 0];
  }

  Output output(State q) const noexcept {
    POPBEAN_DCHECK(q < outputs_.size());
    return outputs_[q];
  }

  Transition apply(State a, State b) const {
    const CodePair out = member_.delta(code_of(a), code_of(b));
    return {id_of(out.initiator), id_of(out.responder)};
  }

  std::string state_name(State q) const {
    return member_.code_name(code_of(q));
  }

  // Reaction-family hook for obs::EngineProbe, present iff the member
  // classifies (obs/probe.hpp detects this via requires-expression).
  obs::ReactionKind classify(State a, State b) const
    requires ClassifyingCodeProtocol<Z>
  {
    return member_.classify_codes(code_of(a), code_of(b));
  }

  // "zoo:<name>/s=<s>/fp=<hash>" — recovery snapshots embed and compare
  // this (population/protocol_identity.hpp). The fingerprint part matches
  // the materialized view's, and MaterializedView copies the full string,
  // so snapshots move freely between the programmatic and frozen forms.
  std::string identity() const { return identity_; }

  const Z& member() const noexcept { return member_; }

  std::uint32_t code_of(State id) const { return universe_.code_of(id); }

  const StateUniverse& universe() const noexcept { return universe_; }

 private:
  static constexpr std::uint32_t kMaxRawCode = 1u << 24;
  static constexpr State kUnmapped = ~State{0};

  State id_of(std::uint32_t code) const {
    POPBEAN_CHECK_MSG(code < code_to_id_.size() &&
                          code_to_id_[code] != kUnmapped,
                      "δ left the closed state universe");
    return code_to_id_[code];
  }

  Z member_;
  StateUniverse universe_;
  std::vector<State> code_to_id_;
  std::vector<Output> outputs_;
  State initial_[2] = {0, 0};
  std::string identity_;
};

}  // namespace popbean::zoo
