// Lazily-grown state universe: raw packed codes ↔ dense engine ids.
//
// The engines index count vectors by dense ids 0 … s−1; programmatic
// protocols speak raw packed codes (zoo/packed_state.hpp). StateUniverse
// interns codes in first-seen order — ids are deterministic functions of
// the insertion sequence, so two runtimes built from the same protocol
// agree on every id — and close_over_pairs grows a universe to the
// pairwise-reachable closure of its seed codes under δ. That closure is
// exactly the state set an engine can ever observe; protocols whose
// closure exceeds the declared bound are refused at construction instead
// of growing without limit mid-simulation.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean::zoo {

class StateUniverse {
 public:
  // Returns the dense id for `code`, adding it in first-seen order.
  State intern(std::uint32_t code) {
    const auto [it, inserted] =
        ids_.try_emplace(code, static_cast<State>(codes_.size()));
    if (inserted) codes_.push_back(code);
    return it->second;
  }

  std::optional<State> find(std::uint32_t code) const {
    const auto it = ids_.find(code);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  std::uint32_t code_of(State id) const {
    POPBEAN_CHECK_MSG(id < codes_.size(), "state id outside the universe");
    return codes_[id];
  }

  std::size_t size() const noexcept { return codes_.size(); }

  const std::vector<std::uint32_t>& codes() const noexcept { return codes_; }

 private:
  std::unordered_map<std::uint32_t, State> ids_;
  std::vector<std::uint32_t> codes_;
};

// Grows `universe` to the closure of its current codes under ordered-pair
// application of `delta` (callable: (uint32_t, uint32_t) → a pair-like with
// .initiator / .responder raw codes). Each ordered pair is processed
// exactly once: a round crosses only the pairs with at least one code that
// was new in the previous round, so total work is O(closure²) δ-calls.
// Exceeding `max_states` is a protocol-definition error (unbounded or
// mis-declared universe) and fails loudly.
template <typename Delta>
void close_over_pairs(StateUniverse& universe, const Delta& delta,
                      std::size_t max_states) {
  POPBEAN_CHECK_MSG(universe.size() >= 1,
                    "pair closure needs at least one seed code");
  POPBEAN_CHECK_MSG(universe.size() <= max_states,
                    "seed codes already exceed the declared state bound");
  std::size_t processed = 0;
  while (processed < universe.size()) {
    const std::size_t frontier = universe.size();
    for (std::size_t a = 0; a < frontier; ++a) {
      const std::size_t b_begin = a >= processed ? 0 : processed;
      for (std::size_t b = b_begin; b < frontier; ++b) {
        const auto out = delta(universe.code_of(static_cast<State>(a)),
                               universe.code_of(static_cast<State>(b)));
        universe.intern(out.initiator);
        universe.intern(out.responder);
        POPBEAN_CHECK_MSG(universe.size() <= max_states,
                          "state universe exceeds the declared bound");
      }
    }
    processed = frontier;
  }
}

}  // namespace popbean::zoo
