// MaterializedView — a zoo runtime frozen into a TabulatedProtocol
// (DESIGN.md §11).
//
// The whole point of a programmatic protocol is *not* having an s² table —
// but the verification toolchain (inferred invariants over the
// stoichiometry matrix, exhaustive model checking, .pbp serialization,
// replayable counterexamples) wants exactly that table. Materialization
// evaluates δ over the runtime's closed universe once, producing a
// TabulatedProtocol with identical dense ids, outputs, names, and initial
// states — every verdict the verifier reaches about the view holds
// verbatim for the programmatic original, and the bit-exact equivalence of
// the two under every engine is itself a tested property (tests/zoo).
//
// The view keeps the runtime's identity string, so recovery snapshots
// taken against one form restore into the other.
#pragma once

#include <string>
#include <utility>

#include "population/protocol.hpp"
#include "protocols/tabulated.hpp"
#include "zoo/code_protocol.hpp"
#include "zoo/runtime.hpp"

namespace popbean::zoo {

class MaterializedView {
 public:
  template <CodeProtocol Z>
  explicit MaterializedView(const Runtime<Z>& runtime)
      : table_(runtime),
        identity_(runtime.identity()),
        zoo_name_(runtime.member().name()) {}

  std::size_t num_states() const noexcept { return table_.num_states(); }

  State initial_state(Opinion opinion) const noexcept {
    return table_.initial_state(opinion);
  }

  Output output(State q) const noexcept { return table_.output(q); }

  Transition apply(State a, State b) const noexcept {
    return table_.apply(a, b);
  }

  std::string state_name(State q) const { return table_.state_name(q); }

  // Copied from the source runtime: the programmatic and frozen forms are
  // the same protocol to the snapshot layer.
  std::string identity() const { return identity_; }

  const std::string& zoo_name() const noexcept { return zoo_name_; }

  // The underlying table, for toolchain paths that want a plain
  // TabulatedProtocol (.pbp serialization, equality against re-parses).
  const TabulatedProtocol& table() const noexcept { return table_; }

 private:
  TabulatedProtocol table_;
  std::string identity_;
  std::string zoo_name_;
};

static_assert(ProtocolLike<MaterializedView>);

template <CodeProtocol Z>
MaterializedView materialize(const Runtime<Z>& runtime) {
  return MaterializedView(runtime);
}

}  // namespace popbean::zoo
