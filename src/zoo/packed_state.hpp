// Bit-packed structured states for programmatic protocols (DESIGN.md §11).
//
// Zoo protocols describe an agent as a small struct — sign, level, phase,
// clock — and encode it into a raw uint32_t code through fixed-width bit
// fields. BitField is branch-free mask arithmetic; FieldLayout allocates
// consecutive fields (lowest bits first) so a protocol's encoding reads as
// a declaration instead of a pile of magic shifts. Raw codes are sparse —
// not every bit pattern is a legal state — which is why engines never see
// them: zoo/universe.hpp interns the reachable codes into the dense
// 0 … s−1 ids the count vectors are indexed by.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace popbean::zoo {

struct BitField {
  unsigned shift = 0;
  unsigned width = 0;

  constexpr std::uint32_t max_value() const noexcept {
    return (std::uint32_t{1} << width) - 1u;
  }

  constexpr std::uint32_t mask() const noexcept { return max_value() << shift; }

  constexpr std::uint32_t get(std::uint32_t code) const noexcept {
    return (code >> shift) & max_value();
  }

  constexpr std::uint32_t set(std::uint32_t code,
                              std::uint32_t value) const noexcept {
    return (code & ~mask()) | ((value & max_value()) << shift);
  }
};

// Allocates consecutive bit fields of one 32-bit code. Usable in constexpr
// context:
//
//   static constexpr auto kLayout = [] {
//     FieldLayout layout;
//     return Fields{layout.take(1), layout.take(1), layout.take(5)};
//   }();
class FieldLayout {
 public:
  constexpr BitField take(unsigned width) {
    const BitField field{next_, width};
    next_ += width;
    return field;
  }

  constexpr unsigned bits_used() const noexcept { return next_; }

 private:
  unsigned next_ = 0;
};

}  // namespace popbean::zoo
