// Phase-clocked cancellation/doubling majority (Berenbrink–Elsässer–
// Friedetzky–Kaaser–Kling–Radzik style; arXiv:1805.05157 — DESIGN.md §11).
//
// Same token algebra as DoublingProtocol, but the rules are *scheduled*: a
// per-agent clock advances by a max-epidemic (both agents adopt
// max(c_x, c_y); the initiator additionally ticks +1), and the clock value
// selects which rule family is live —
//
//   phase 2i   (cancellation): cancel + absorb only
//   phase 2i+1 (doubling):     split + merge only
//   clock = C  (backstop):     everything on, forever
//
// Alternating the families keeps cancellations and splits from interleaving
// arbitrarily, which is what buys the O(log^{5/3} n) stabilization of the
// paper (our clock is the simple epidemic variant, not the full junta
// construction — the phase structure is what we reproduce). The clock
// *saturates* at C instead of wrapping: clocks are then monotone, every
// interaction below saturation is productive, so no terminal component
// contains a clock below C — and at C the protocol *is* DoublingProtocol,
// whose terminal components are unanimous-correct. Scheduling buys speed;
// the backstop alone decides correctness, which is why the same
// small-n/model-check gates certify this member too.
//
// Flip (a level-L token converting an opposite blank) stays live in every
// phase: it is weight-neutral and only touches follower bits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "obs/probe.hpp"
#include "population/protocol.hpp"
#include "util/check.hpp"
#include "zoo/doubling.hpp"
#include "zoo/packed_state.hpp"

namespace popbean::zoo {

class BerenbrinkProtocol : private DoublingProtocol {
 public:
  // levels = L as in DoublingProtocol; phase_ticks = clock ticks per phase;
  // phase_pairs = number of (cancellation, doubling) phase pairs before the
  // backstop, so the clock saturates at C = 2 · phase_ticks · phase_pairs.
  explicit BerenbrinkProtocol(int levels = 8, int phase_ticks = 4,
                              int phase_pairs = 3)
      : DoublingProtocol(levels),
        ticks_(static_cast<std::uint32_t>(phase_ticks)),
        saturation_(2u * static_cast<std::uint32_t>(phase_ticks) *
                    static_cast<std::uint32_t>(phase_pairs)) {
    POPBEAN_CHECK_MSG(phase_ticks >= 1 && phase_pairs >= 1,
                      "berenbrink: phase parameters must be positive");
    POPBEAN_CHECK_MSG(saturation_ <= kClock.max_value(),
                      "berenbrink: clock range exceeds the packed field");
  }

  std::string name() const { return "berenbrink"; }

  using DoublingProtocol::levels;

  std::uint32_t saturation() const noexcept { return saturation_; }

  std::size_t max_states() const {
    return DoublingProtocol::max_states() * (saturation_ + 1);
  }

  std::uint32_t initial_code(Opinion opinion) const {
    return DoublingProtocol::initial_code(opinion);  // clock field = 0
  }

  Output output_code(std::uint32_t code) const {
    return DoublingProtocol::output_code(strip(code));
  }

  std::string code_name(std::uint32_t code) const {
    return DoublingProtocol::code_name(strip(code)) + "@" +
           std::to_string(kClock.get(code));
  }

  std::int64_t weight_code(std::uint32_t code) const {
    return DoublingProtocol::weight_code(strip(code));
  }

  CodePair delta(std::uint32_t x, std::uint32_t y) const {
    const std::uint32_t shared = shared_clock(x, y);
    const Reaction r = react(strip(x), strip(y), gate_for(shared));
    return {with_clock(r.next.initiator,
                       std::min(shared + 1, saturation_)),
            with_clock(r.next.responder, shared)};
  }

  obs::ReactionKind classify_codes(std::uint32_t x, std::uint32_t y) const {
    const std::uint32_t shared = shared_clock(x, y);
    const Reaction r = react(strip(x), strip(y), gate_for(shared));
    if (r.kind != obs::ReactionKind::kNull) return r.kind;
    // Clock-only movement is productive but belongs to no token family.
    const bool clocks_settled =
        kClock.get(x) == saturation_ && kClock.get(y) == saturation_;
    return clocks_settled ? obs::ReactionKind::kNull
                          : obs::ReactionKind::kOther;
  }

 private:
  static constexpr BitField kClock{kTokenBits, 6};

  static constexpr std::uint32_t strip(std::uint32_t code) {
    return kClock.set(code, 0);
  }

  static constexpr std::uint32_t with_clock(std::uint32_t code,
                                            std::uint32_t clock) {
    return kClock.set(code, clock);
  }

  static std::uint32_t shared_clock(std::uint32_t x, std::uint32_t y) {
    return std::max(kClock.get(x), kClock.get(y));
  }

  RuleGate gate_for(std::uint32_t clock) const {
    if (clock >= saturation_) return RuleGate{};  // backstop: everything on
    const bool cancellation = (clock / ticks_) % 2 == 0;
    return RuleGate{/*cancel=*/cancellation, /*expand=*/!cancellation};
  }

  std::uint32_t ticks_;
  std::uint32_t saturation_;
};

static_assert(CodeProtocol<BerenbrinkProtocol>);
static_assert(ClassifyingCodeProtocol<BerenbrinkProtocol>);
static_assert(WeightedCodeProtocol<BerenbrinkProtocol>);

}  // namespace popbean::zoo
