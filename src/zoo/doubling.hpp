// Cancellation/doubling exact majority (Gąsieniec–Stachowiak / Doty et al.
// style; arXiv:1904.04374, arXiv:2106.10201 — DESIGN.md §11).
//
// Each agent is either a signed token or a blank follower:
//
//   token(sign, level)   carries weight sign · 2^(L − level), level 0 … L
//   blank(follower)      weight 0; outputs its follower opinion
//
// Opinion A starts as token(+, 0), B as token(−, 0); the initial weighted
// sum is (a − b) · 2^L, so its sign is the answer and every rule below
// conserves it exactly (the `weight_code` hook, proved conserved by the
// verifier over the materialized table):
//
//   cancel   (+,l) (−,l)   → blank(A) blank(B)      ± 2^(L−l) annihilate
//   absorb   (s,l) (¬s,l+1)→ (s,l+1)  blank(s)      2^(L−l) − 2^(L−l−1)
//   split    (s,l) blank   → (s,l+1)  (s,l+1)       2^(L−l) = 2 · 2^(L−l−1)
//   merge    (s,l) (s,l)   → (s,l−1)  blank(s)      2 · 2^(L−l) = 2^(L−l+1)
//   flip     (s,L) blank(¬s) → (s,L)  blank(s)      weight unchanged
//
// (cancel/absorb need opposite signs; split needs l < L; merge needs
// l ≥ 1; flip only fires at the bottom level, where split cannot.)
//
// Why this is *exact*: the total |weight| never increases, and the merge
// rule is the load-bearing subtlety. Without it, opposite-sign tokens can
// split past each other into levels ≥ 2 apart and deadlock in a mixed
// configuration (reachable at n = 9 from a 4A/5B split — the model checker
// finds it). With merge, same-sign tokens at equal level ≥ 1 can always
// recombine downward, and a terminal component with both signs present
// would need every cross pair ≥ 2 levels apart with an integer weighted
// sum — impossible for distinct dyadic weights — so every terminal
// component is unanimous for the true majority. The small-n exhaustive
// search and the model checker certify exactly this on the materialized
// view.
#pragma once

#include <cstdint>
#include <string>

#include "obs/probe.hpp"
#include "population/protocol.hpp"
#include "util/check.hpp"
#include "zoo/code_protocol.hpp"
#include "zoo/packed_state.hpp"

namespace popbean::zoo {

class DoublingProtocol {
 public:
  // levels = L: tokens carry weights 2^L … 2^0. More levels give splits
  // more room (fewer blocked splits at large n); the verification gates
  // use a small L because the rules do not depend on it.
  explicit DoublingProtocol(int levels = 8) : levels_(levels) {
    POPBEAN_CHECK_MSG(levels >= 1 && levels <= kMaxLevels,
                      "doubling: levels out of range");
  }

  std::string name() const { return "doubling"; }

  int levels() const noexcept { return levels_; }

  std::size_t max_states() const {
    return 2 * (static_cast<std::size_t>(levels_) + 1) + 2;
  }

  std::uint32_t initial_code(Opinion opinion) const {
    return token(opinion == Opinion::A, 0);
  }

  Output output_code(std::uint32_t code) const {
    return (is_token(code) ? sign_of(code) : follower_of(code)) ? 1 : 0;
  }

  std::string code_name(std::uint32_t code) const {
    if (is_token(code)) {
      std::string name(sign_of(code) ? "+" : "-");
      name += std::to_string(level_of(code));
      return name;
    }
    return follower_of(code) ? "bA" : "bB";
  }

  // Conserved weighted sum (the zoo analogue of AVC's Invariant 4.3).
  std::int64_t weight_code(std::uint32_t code) const {
    if (!is_token(code)) return 0;
    const std::int64_t magnitude = std::int64_t{1}
                                   << (levels_ - level_of(code));
    return sign_of(code) ? magnitude : -magnitude;
  }

  CodePair delta(std::uint32_t x, std::uint32_t y) const {
    return react(x, y, RuleGate{}).next;
  }

  obs::ReactionKind classify_codes(std::uint32_t x, std::uint32_t y) const {
    return react(x, y, RuleGate{}).kind;
  }

 protected:
  // Shared with BerenbrinkProtocol, which runs the same token algebra
  // under a phase clock.
  static constexpr int kMaxLevels = 31;

  static constexpr auto kFields = [] {
    FieldLayout layout;
    struct Fields {
      BitField is_token;  // 1 = signed token, 0 = blank follower
      BitField payload;   // token: sign (1 = +/A); blank: follower opinion
      BitField level;     // token only
    } fields{layout.take(1), layout.take(1), layout.take(5)};
    return fields;
  }();

  static constexpr unsigned kTokenBits = 7;  // bits used by the fields above

  static constexpr bool is_token(std::uint32_t code) {
    return kFields.is_token.get(code) != 0;
  }
  static constexpr bool sign_of(std::uint32_t code) {
    return kFields.payload.get(code) != 0;
  }
  static constexpr bool follower_of(std::uint32_t code) {
    return kFields.payload.get(code) != 0;
  }
  static constexpr int level_of(std::uint32_t code) {
    return static_cast<int>(kFields.level.get(code));
  }
  static constexpr std::uint32_t token(bool sign, int level) {
    return kFields.level.set(
        kFields.payload.set(kFields.is_token.set(0, 1), sign ? 1 : 0),
        static_cast<std::uint32_t>(level));
  }
  static constexpr std::uint32_t blank(bool follower) {
    return kFields.payload.set(0, follower ? 1 : 0);
  }

  struct Reaction {
    CodePair next;
    obs::ReactionKind kind;
  };

  // Which rule families are enabled — BerenbrinkProtocol narrows this per
  // phase; the plain doubling protocol always runs with everything on.
  struct RuleGate {
    bool cancel = true;  // cancel + absorb
    bool expand = true;  // split + merge
  };

  Reaction react(std::uint32_t x, std::uint32_t y, RuleGate gate) const {
    using obs::ReactionKind;
    const Reaction null{{x, y}, ReactionKind::kNull};

    if (is_token(x) && is_token(y)) {
      const int lx = level_of(x);
      const int ly = level_of(y);
      const bool sx = sign_of(x);
      const bool sy = sign_of(y);
      if (sx != sy) {
        if (!gate.cancel) return null;
        if (lx == ly) {
          return {{blank(sx), blank(sy)}, ReactionKind::kNeutralization};
        }
        if (lx + 1 == ly) {  // x is heavier; it survives one level down
          return {{token(sx, lx + 1), blank(sx)}, ReactionKind::kAveraging};
        }
        if (ly + 1 == lx) {
          return {{blank(sy), token(sy, ly + 1)}, ReactionKind::kAveraging};
        }
        return null;  // gap ≥ 2: no conserving rule; merges close the gap
      }
      if (gate.expand && lx == ly && lx >= 1) {
        return {{token(sx, lx - 1), blank(sx)}, ReactionKind::kShiftToZero};
      }
      return null;
    }

    if (is_token(x) != is_token(y)) {
      const std::uint32_t t = is_token(x) ? x : y;
      const bool ts = sign_of(t);
      if (gate.expand && level_of(t) < levels_) {
        const std::uint32_t half = token(ts, level_of(t) + 1);
        return {{half, half}, ReactionKind::kSignToZero};
      }
      const std::uint32_t b = is_token(x) ? y : x;
      if (follower_of(b) != ts) {
        const std::uint32_t flipped = blank(ts);
        return {is_token(x) ? CodePair{x, flipped} : CodePair{flipped, y},
                ReactionKind::kOther};
      }
      return null;
    }

    return null;  // blank–blank
  }

 private:
  int levels_;
};

static_assert(CodeProtocol<DoublingProtocol>);
static_assert(ClassifyingCodeProtocol<DoublingProtocol>);
static_assert(WeightedCodeProtocol<DoublingProtocol>);

}  // namespace popbean::zoo
