// The protocol zoo registry: stable "zoo:<name>" specs for programmatic
// protocols (DESIGN.md §11).
//
// Everything that accepts a protocol by name — the NDJSON job schema,
// popbean-lint, the benches — resolves zoo specs here, so the set of
// members and their default parameters live in exactly one place. Because
// the engines are templates over ProtocolLike, dispatch is a visitor:
// with_zoo_runtime("zoo:doubling", fn) calls fn on a shared, immutable
// Runtime of the right concrete type.
//
// Two parameterizations per member:
//   with_zoo_runtime       simulation defaults (benches, serve jobs)
//   with_zoo_runtime_gate  small state bound for the exhaustive
//                          verification gates (the rules are the same
//                          code; only levels / clock range shrink, and
//                          model-checking cost grows steeply with s)
//
// Runtimes are constructed once (function-local statics, thread-safe) and
// never mutated, so concurrent serve workers share them freely.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "zoo/berenbrink.hpp"
#include "zoo/doubling.hpp"
#include "zoo/runtime.hpp"

namespace popbean::zoo {

struct ZooEntry {
  std::string spec;     // the registry name, e.g. "zoo:doubling"
  std::string summary;  // one line for --help / docs
  std::string paper;    // source of the protocol design
};

inline const std::vector<ZooEntry>& zoo_members() {
  static const std::vector<ZooEntry> entries = {
      {"zoo:berenbrink",
       "phase-clocked cancellation/doubling, O(log^{5/3} n) style",
       "Berenbrink et al., arXiv:1805.05157"},
      {"zoo:doubling",
       "unclocked cancellation/doubling, time-and-space-optimal style",
       "Gasieniec-Stachowiak / Doty et al., arXiv:2106.10201"},
  };
  return entries;
}

// Anything spelled "zoo:<...>" claims to be a zoo member (it may still be
// unknown — callers distinguish "not a zoo spec at all" from "a zoo spec
// naming no member" to give precise errors).
inline bool is_zoo_spec(std::string_view protocol) {
  return protocol.substr(0, 4) == "zoo:";
}

inline bool is_zoo_member(std::string_view spec) {
  for (const ZooEntry& entry : zoo_members()) {
    if (entry.spec == spec) return true;
  }
  return false;
}

inline std::string zoo_known_list() {
  std::string list;
  for (const ZooEntry& entry : zoo_members()) {
    if (!list.empty()) list += ", ";
    list += entry.spec;
  }
  return list;
}

[[noreturn]] inline void throw_unknown_zoo(std::string_view spec) {
  throw std::invalid_argument("unknown zoo protocol \"" + std::string(spec) +
                              "\" (known: " + zoo_known_list() + ")");
}

// The shared instances live in non-template functions: a static local
// inside the visitor templates below would be duplicated per visitor
// *type*, silently rebuilding the universe closure for every distinct
// lambda passed in.
namespace detail {

inline const Runtime<DoublingProtocol>& doubling_runtime() {
  static const Runtime<DoublingProtocol> runtime{DoublingProtocol(8)};
  return runtime;
}

inline const Runtime<BerenbrinkProtocol>& berenbrink_runtime() {
  static const Runtime<BerenbrinkProtocol> runtime{
      BerenbrinkProtocol(8, 4, 3)};
  return runtime;
}

inline const Runtime<DoublingProtocol>& doubling_gate_runtime() {
  static const Runtime<DoublingProtocol> runtime{DoublingProtocol(2)};
  return runtime;
}

inline const Runtime<BerenbrinkProtocol>& berenbrink_gate_runtime() {
  static const Runtime<BerenbrinkProtocol> runtime{
      BerenbrinkProtocol(1, 1, 1)};
  return runtime;
}

}  // namespace detail

template <typename Fn>
decltype(auto) with_zoo_runtime(std::string_view spec, Fn&& fn) {
  if (spec == "zoo:doubling") return fn(detail::doubling_runtime());
  if (spec == "zoo:berenbrink") return fn(detail::berenbrink_runtime());
  throw_unknown_zoo(spec);
}

template <typename Fn>
decltype(auto) with_zoo_runtime_gate(std::string_view spec, Fn&& fn) {
  if (spec == "zoo:doubling") return fn(detail::doubling_gate_runtime());
  if (spec == "zoo:berenbrink") return fn(detail::berenbrink_gate_runtime());
  throw_unknown_zoo(spec);
}

}  // namespace popbean::zoo
