// Declared conservation laws for zoo protocols (DESIGN.md §11).
//
// A WeightedCodeProtocol names one integer weight per code whose
// population sum its rules conserve — the zoo analogue of AVC's
// Invariant 4.3. This helper lowers that hook onto the runtime's dense
// ids, producing the verify::LinearInvariant the conservation prover
// checks against every δ entry and the inference pass must rediscover in
// the stoichiometry null space. Because materialization preserves dense
// ids, the same invariant applies unchanged to the MaterializedView.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "verify/linear_invariant.hpp"
#include "zoo/code_protocol.hpp"
#include "zoo/runtime.hpp"

namespace popbean::zoo {

template <WeightedCodeProtocol Z>
verify::LinearInvariant weight_invariant(const Runtime<Z>& runtime) {
  std::vector<std::int64_t> weights(runtime.num_states());
  for (State q = 0; q < runtime.num_states(); ++q) {
    weights[q] = runtime.member().weight_code(runtime.code_of(q));
  }
  return verify::LinearInvariant(runtime.member().name() + " weighted sum",
                                 std::move(weights));
}

}  // namespace popbean::zoo
