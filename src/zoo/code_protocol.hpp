// The programmatic protocol concept (DESIGN.md §11).
//
// A zoo member defines majority dynamics over raw packed codes
// (zoo/packed_state.hpp): δ is *computed* per interaction instead of read
// from an s² table, so the state space is bounded only by what the rules
// can reach, not by what fits in a table. zoo/runtime.hpp adapts any
// CodeProtocol to the engines' dense-id ProtocolLike interface, and
// zoo/materialize.hpp freezes one into a TabulatedProtocol when the
// verification toolchain wants the whole table at once.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

#include "obs/probe.hpp"
#include "population/protocol.hpp"

namespace popbean::zoo {

// δ result over raw codes, mirroring population/protocol.hpp's Transition
// over dense ids.
struct CodePair {
  std::uint32_t initiator;
  std::uint32_t responder;
};

template <typename Z>
concept CodeProtocol = requires(const Z& z, std::uint32_t code, Opinion op) {
  { z.name() } -> std::convertible_to<std::string>;
  { z.initial_code(op) } -> std::same_as<std::uint32_t>;
  { z.delta(code, code) } -> std::same_as<CodePair>;
  { z.output_code(code) } -> std::convertible_to<Output>;
  { z.code_name(code) } -> std::convertible_to<std::string>;
  // Upper bound on the pairwise-reachable closure; Runtime construction
  // fails loudly if the actual closure exceeds it.
  { z.max_states() } -> std::convertible_to<std::size_t>;
};

// Optional hook: per-interaction reaction-family classification for the
// obs::EngineProbe taxonomy. Runtime forwards it so probes see protocol
// families instead of a flat kOther.
template <typename Z>
concept ClassifyingCodeProtocol =
    CodeProtocol<Z> && requires(const Z& z, std::uint32_t code) {
      { z.classify_codes(code, code) } -> std::same_as<obs::ReactionKind>;
    };

// Optional hook: an integer weight per code whose population sum the
// protocol conserves (the zoo analogue of AVC's Invariant 4.3). Feeds
// verify::LinearInvariant via zoo/invariants.hpp.
template <typename Z>
concept WeightedCodeProtocol =
    CodeProtocol<Z> && requires(const Z& z, std::uint32_t code) {
      { z.weight_code(code) } -> std::convertible_to<std::int64_t>;
    };

}  // namespace popbean::zoo
