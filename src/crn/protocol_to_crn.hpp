// Compiles a population protocol into a chemical reaction network whose
// stochastic semantics match the protocol's continuous-time model.
//
// In the continuous-time population model, every ordered pair of distinct
// agents interacts at rate 1/n, so "real" time matches parallel time in the
// discrete model as n grows. Species = protocol states. For each ordered
// state pair (a, b) with a non-null transition (a, b) → (a′, b′) we emit a
// reaction a + b → a′ + b′:
//
//   a ≠ b:  rate 1/n, propensity (1/n)·#a·#b        — matches the c_a·c_b
//           ordered-pair weight of the discrete chain.
//   a = b:  rate 2/n, propensity (2/n)·#a·(#a−1)/2  — both orderings of the
//           same-state pair fire the same transition, and there are
//           c_a·(c_a−1) ordered pairs.
//
// With these rates the embedded jump chain of the CRN is exactly the
// productive-interaction chain of the protocol, and the CRN's physical time
// equals the protocol's parallel time in distribution up to the usual
// exponential-clock fluctuations (verified by tests/crn/*).
#pragma once

#include <string>

#include "crn/reaction.hpp"
#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean::crn {

template <ProtocolLike P>
ReactionNetwork compile_protocol(const P& protocol, std::uint64_t n) {
  POPBEAN_CHECK(n >= 2);
  ReactionNetwork net;
  net.num_species = protocol.num_states();
  net.species_names.reserve(net.num_species);
  for (State q = 0; q < net.num_species; ++q) {
    net.species_names.push_back(protocol.state_name(q));
  }
  const double pair_rate = 1.0 / static_cast<double>(n);
  for (State a = 0; a < net.num_species; ++a) {
    for (State b = 0; b < net.num_species; ++b) {
      const Transition t = protocol.apply(a, b);
      if (is_null(t, a, b)) continue;
      Reaction r;
      r.reactants = {a, b};
      r.products = {t.initiator, t.responder};
      r.rate = a == b ? 2.0 * pair_rate : pair_rate;
      net.reactions.push_back(std::move(r));
    }
  }
  net.validate();
  return net;
}

}  // namespace popbean::crn
