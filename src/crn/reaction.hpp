// Chemical reaction network (CRN) vocabulary.
//
// Population protocols are the computational abstraction of well-mixed
// chemistries; the paper's motivation (§1) cites DNA strand-displacement
// implementations [CDS+13]. This module lets any protocol be run as a CRN
// under mass-action stochastic kinetics and cross-checked against the
// discrete pairwise model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace popbean::crn {

using SpeciesId = std::uint32_t;

// A reaction with at most two reactants and arbitrary products, firing with
// mass-action propensity:
//   one reactant A:            rate · #A
//   two distinct reactants A+B: rate · #A · #B
//   doubled reactant A+A:      rate · #A · (#A − 1) / 2
struct Reaction {
  std::vector<SpeciesId> reactants;  // size 1 or 2
  std::vector<SpeciesId> products;
  double rate = 1.0;

  void validate(std::size_t num_species) const {
    POPBEAN_CHECK(!reactants.empty() && reactants.size() <= 2);
    POPBEAN_CHECK(rate > 0.0);
    for (SpeciesId s : reactants) POPBEAN_CHECK(s < num_species);
    for (SpeciesId s : products) POPBEAN_CHECK(s < num_species);
  }
};

struct ReactionNetwork {
  std::size_t num_species = 0;
  std::vector<Reaction> reactions;
  std::vector<std::string> species_names;  // optional, for diagnostics

  void validate() const {
    POPBEAN_CHECK(num_species > 0);
    for (const auto& r : reactions) r.validate(num_species);
  }
};

}  // namespace popbean::crn
