// Exact stochastic simulation of a reaction network (Gillespie's direct
// method, 1977): exponential holding times at the total propensity, next
// reaction chosen proportionally to its propensity.
#pragma once

#include <cstdint>
#include <vector>

#include "crn/reaction.hpp"
#include "util/rng.hpp"

namespace popbean::crn {

class GillespieEngine {
 public:
  GillespieEngine(ReactionNetwork network, std::vector<std::uint64_t> counts);

  const ReactionNetwork& network() const noexcept { return network_; }
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  double now() const noexcept { return now_; }
  std::uint64_t firings() const noexcept { return firings_; }

  // Sum of all reaction propensities in the current state; 0 ⇔ no reaction
  // can fire (the network is exhausted).
  double total_propensity() const;

  // Fires one reaction and advances the clock. Returns false (leaving the
  // state unchanged) when no reaction can fire.
  bool step(Xoshiro256ss& rng);

  // Runs until `until(counts)` is true, the network exhausts, or
  // `max_firings` is hit. Returns the number of reactions fired.
  template <typename Predicate>
  std::uint64_t run_until(Xoshiro256ss& rng, Predicate until,
                          std::uint64_t max_firings) {
    std::uint64_t fired = 0;
    while (fired < max_firings && !until(counts_)) {
      if (!step(rng)) break;
      ++fired;
    }
    return fired;
  }

 private:
  double propensity(const Reaction& r) const;
  void apply(const Reaction& r);

  ReactionNetwork network_;
  std::vector<std::uint64_t> counts_;
  double now_ = 0.0;
  std::uint64_t firings_ = 0;
};

}  // namespace popbean::crn
