#include "crn/gillespie.hpp"

#include "util/check.hpp"

namespace popbean::crn {

GillespieEngine::GillespieEngine(ReactionNetwork network,
                                 std::vector<std::uint64_t> counts)
    : network_(std::move(network)), counts_(std::move(counts)) {
  network_.validate();
  POPBEAN_CHECK(counts_.size() == network_.num_species);
}

double GillespieEngine::propensity(const Reaction& r) const {
  if (r.reactants.size() == 1) {
    return r.rate * static_cast<double>(counts_[r.reactants[0]]);
  }
  const SpeciesId a = r.reactants[0];
  const SpeciesId b = r.reactants[1];
  if (a == b) {
    const auto c = static_cast<double>(counts_[a]);
    return r.rate * c * (c - 1.0) / 2.0;
  }
  return r.rate * static_cast<double>(counts_[a]) *
         static_cast<double>(counts_[b]);
}

double GillespieEngine::total_propensity() const {
  double total = 0.0;
  for (const auto& r : network_.reactions) total += propensity(r);
  return total;
}

void GillespieEngine::apply(const Reaction& r) {
  for (SpeciesId s : r.reactants) {
    POPBEAN_CHECK_MSG(counts_[s] > 0, "reaction fired without reactants");
    --counts_[s];
  }
  for (SpeciesId s : r.products) ++counts_[s];
}

bool GillespieEngine::step(Xoshiro256ss& rng) {
  const double total = total_propensity();
  if (total <= 0.0) return false;
  now_ += rng.exponential(total);
  double target = rng.unit() * total;
  for (const auto& r : network_.reactions) {
    const double a = propensity(r);
    if (target < a) {
      apply(r);
      ++firings_;
      return true;
    }
    target -= a;
  }
  // Floating-point underflow at the boundary: fire the last reaction with
  // positive propensity.
  for (auto it = network_.reactions.rbegin(); it != network_.reactions.rend();
       ++it) {
    if (propensity(*it) > 0.0) {
      apply(*it);
      ++firings_;
      return true;
    }
  }
  return false;
}

}  // namespace popbean::crn
