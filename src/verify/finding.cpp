#include "verify/finding.hpp"

#include <sstream>

#include "util/json.hpp"

namespace popbean::verify {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string_view pass_of(const Finding& finding) noexcept {
  const std::string_view check = finding.check;
  const std::size_t dot = check.find('.');
  return dot == std::string_view::npos ? check : check.substr(0, dot);
}

std::string to_string(const Finding& finding) {
  std::ostringstream os;
  os << severity_name(finding.severity) << ": [" << finding.check << "] "
     << finding.message;
  if (!finding.location.empty()) os << " @ " << finding.location;
  return os.str();
}

void Report::add(Severity severity, std::string check, std::string message,
                 std::string location) {
  findings_.push_back(
      {severity, std::move(check), std::move(message), std::move(location)});
}

void Report::note(std::string check, std::string message,
                  std::string location) {
  add(Severity::kNote, std::move(check), std::move(message),
      std::move(location));
}

void Report::warn(std::string check, std::string message,
                  std::string location) {
  add(Severity::kWarning, std::move(check), std::move(message),
      std::move(location));
}

void Report::error(std::string check, std::string message,
                   std::string location) {
  add(Severity::kError, std::move(check), std::move(message),
      std::move(location));
}

std::size_t Report::count(Severity severity) const noexcept {
  std::size_t total = 0;
  for (const Finding& finding : findings_) {
    if (finding.severity == severity) ++total;
  }
  return total;
}

std::size_t Report::count_check(std::string_view check) const noexcept {
  std::size_t total = 0;
  for (const Finding& finding : findings_) {
    if (finding.check == check) ++total;
  }
  return total;
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const Finding& finding : findings_) {
    os << verify::to_string(finding) << "\n";
  }
  return os.str();
}

void Report::merge(const Report& other) {
  findings_.insert(findings_.end(), other.findings_.begin(),
                   other.findings_.end());
}

void write_json(JsonWriter& json, const Report& report) {
  json.begin_object();
  json.kv("subject", report.subject());
  json.kv("ok", report.ok());
  json.kv("errors", report.errors());
  json.kv("warnings", report.warnings());
  json.key("findings");
  json.begin_array();
  for (const Finding& finding : report.findings()) {
    json.begin_object();
    json.kv("pass", pass_of(finding));
    json.kv("check", finding.check);
    json.kv("severity", severity_name(finding.severity));
    json.kv("message", finding.message);
    json.kv("location", finding.location);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace popbean::verify
