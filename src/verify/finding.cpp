#include "verify/finding.hpp"

#include <sstream>

namespace popbean::verify {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string to_string(const Finding& finding) {
  std::ostringstream os;
  os << severity_name(finding.severity) << ": [" << finding.check << "] "
     << finding.message;
  return os.str();
}

void Report::add(Severity severity, std::string check, std::string message) {
  findings_.push_back({severity, std::move(check), std::move(message)});
}

void Report::note(std::string check, std::string message) {
  add(Severity::kNote, std::move(check), std::move(message));
}

void Report::warn(std::string check, std::string message) {
  add(Severity::kWarning, std::move(check), std::move(message));
}

void Report::error(std::string check, std::string message) {
  add(Severity::kError, std::move(check), std::move(message));
}

std::size_t Report::count(Severity severity) const noexcept {
  std::size_t total = 0;
  for (const Finding& finding : findings_) {
    if (finding.severity == severity) ++total;
  }
  return total;
}

std::size_t Report::count_check(std::string_view check) const noexcept {
  std::size_t total = 0;
  for (const Finding& finding : findings_) {
    if (finding.check == check) ++total;
  }
  return total;
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const Finding& finding : findings_) {
    os << verify::to_string(finding) << "\n";
  }
  return os.str();
}

void Report::merge(const Report& other) {
  findings_.insert(findings_.end(), other.findings_.begin(),
                   other.findings_.end());
}

}  // namespace popbean::verify
