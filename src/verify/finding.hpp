// Diagnostic vocabulary for the static protocol verifier.
//
// Every check in src/verify/ reports through a Report: a list of findings,
// each tagged with a severity, the dotted id of the check that produced it
// ("invariant.conservation", "well_formed.transition_range", …), and a
// human-readable message. `popbean-lint` renders reports and turns the
// presence of error findings into a nonzero exit code; tests assert on
// counts per check id.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace popbean::verify {

enum class Severity {
  kNote,     // structural information, no action needed
  kWarning,  // suspicious but not provably wrong (e.g. unreachable states)
  kError,    // the protocol is broken or a claimed property fails
};

std::string_view severity_name(Severity severity) noexcept;

struct Finding {
  Severity severity = Severity::kNote;
  std::string check;    // dotted check id, e.g. "invariant.conservation"
  std::string message;  // one line, no trailing newline

  friend bool operator==(const Finding&, const Finding&) = default;
};

// Renders "error: [invariant.conservation] message".
std::string to_string(const Finding& finding);

// Accumulates the findings of one verification run over one protocol.
class Report {
 public:
  explicit Report(std::string subject = {}) : subject_(std::move(subject)) {}

  const std::string& subject() const noexcept { return subject_; }

  void add(Severity severity, std::string check, std::string message);
  void note(std::string check, std::string message);
  void warn(std::string check, std::string message);
  void error(std::string check, std::string message);

  const std::vector<Finding>& findings() const noexcept { return findings_; }
  std::size_t count(Severity severity) const noexcept;
  std::size_t errors() const noexcept { return count(Severity::kError); }
  std::size_t warnings() const noexcept { return count(Severity::kWarning); }

  // Number of findings produced by the given check id.
  std::size_t count_check(std::string_view check) const noexcept;

  // No error findings (warnings and notes allowed).
  bool ok() const noexcept { return errors() == 0; }

  // One rendered finding per line; empty string for an empty report.
  std::string to_string() const;

  // Appends every finding of `other` (prefixing nothing; check ids already
  // identify the producer). Used by drivers that run several checks.
  void merge(const Report& other);

 private:
  std::string subject_;
  std::vector<Finding> findings_;
};

}  // namespace popbean::verify
