// Diagnostic vocabulary for the static protocol verifier.
//
// Every check in src/verify/ reports through a Report: a list of findings,
// each tagged with a severity, the dotted id of the check that produced it
// ("invariant.conservation", "well_formed.transition_range", …), an
// optional location (a δ-table cell, an instance like "n=6 split=4A/2B"),
// and a human-readable message. `popbean-lint` renders reports — as text or,
// with --json, in a stable machine-readable schema — and turns the presence
// of error findings into a nonzero exit code; tests assert on counts per
// check id.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace popbean {
class JsonWriter;
}

namespace popbean::verify {

enum class Severity {
  kNote,     // structural information, no action needed
  kWarning,  // suspicious but not provably wrong (e.g. unreachable states)
  kError,    // the protocol is broken or a claimed property fails
};

std::string_view severity_name(Severity severity) noexcept;

struct Finding {
  Severity severity = Severity::kNote;
  std::string check;    // dotted check id, e.g. "invariant.conservation"
  std::string message;  // one line, no trailing newline
  std::string location;  // optional: δ cell or instance, e.g. "delta 0 3"

  friend bool operator==(const Finding&, const Finding&) = default;
};

// The pass a finding belongs to: the check id's first dotted component
// ("invariant.conservation" -> "invariant"). Stable key of the JSON schema.
std::string_view pass_of(const Finding& finding) noexcept;

// Renders "error: [invariant.conservation] message" plus " @ location" when
// the finding carries one.
std::string to_string(const Finding& finding);

// Accumulates the findings of one verification run over one protocol.
class Report {
 public:
  explicit Report(std::string subject = {}) : subject_(std::move(subject)) {}

  const std::string& subject() const noexcept { return subject_; }

  void add(Severity severity, std::string check, std::string message,
           std::string location = {});
  void note(std::string check, std::string message, std::string location = {});
  void warn(std::string check, std::string message, std::string location = {});
  void error(std::string check, std::string message, std::string location = {});

  const std::vector<Finding>& findings() const noexcept { return findings_; }
  std::size_t count(Severity severity) const noexcept;
  std::size_t errors() const noexcept { return count(Severity::kError); }
  std::size_t warnings() const noexcept { return count(Severity::kWarning); }

  // Number of findings produced by the given check id.
  std::size_t count_check(std::string_view check) const noexcept;

  // No error findings (warnings and notes allowed).
  bool ok() const noexcept { return errors() == 0; }

  // One rendered finding per line; empty string for an empty report.
  std::string to_string() const;

  // Appends every finding of `other` (prefixing nothing; check ids already
  // identify the producer). Used by drivers that run several checks.
  void merge(const Report& other);

 private:
  std::string subject_;
  std::vector<Finding> findings_;
};

// Writes the report as one JSON object in the stable popbean-lint schema
// (version 1):
//
//   {"subject": …, "ok": bool, "errors": N, "warnings": N,
//    "findings": [{"pass": …, "check": …, "severity": …,
//                  "message": …, "location": …}, …]}
//
// Field set and meaning are append-only across versions so CI can diff
// findings structurally instead of grepping rendered text.
void write_json(JsonWriter& json, const Report& report);

}  // namespace popbean::verify
