// Automatic linear-invariant inference from a protocol's stoichiometry.
//
// Every productive ordered transition (a, b) → (a′, b′) changes the
// configuration by a fixed integer net vector Δ ∈ ℤ^s (Δ[a]−−, Δ[b]−−,
// Δ[a′]++, Δ[b′]++). A weight vector w : Q → ℤ induces a conserved
// functional Φ(c) = Σ_q w(q)·c(q) iff Δ·w = 0 for every reaction — i.e. the
// linear conserved quantities are *exactly* the left null space of the
// stoichiometry matrix. That null space is computed here with exact integer
// arithmetic (unimodular column reduction, then a Hermite-normal-form
// canonicalization of the resulting kernel lattice), so inference is
// complete for linear invariants: every conservation law of the form
// Σ w(q)·c(q), and nothing else, falls out — the paper's Invariant 4.3 and
// the four-state strong-difference law included, with no hand-written
// weights anywhere.
//
// The pass closes its own loop: each inferred basis vector is handed back
// to the LinearInvariant prover (check_conservation), which re-verifies it
// over the full δ-table. The kernel of an integer matrix is a saturated
// sublattice of ℤ^s, so an integer vector lies in the rational span of the
// basis iff it is an *integer* combination of it — membership testing
// (lattice_member) therefore needs no rational arithmetic.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "population/protocol.hpp"
#include "verify/finding.hpp"
#include "verify/linear_invariant.hpp"

namespace popbean::verify {

// Exact integer elimination overflowed 64 bits. Net-change entries are in
// {−2, …, 2} and the matrices are tiny, so in practice this never fires for
// real protocols; it exists so a pathological table degrades into a finding
// instead of silent wraparound.
class StoichiometryOverflow : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The distinct net-change vectors of a protocol's productive transitions.
// `reactions[i]` names one exemplar transition producing `rows[i]` for
// diagnostics (several ordered pairs can share a net change).
struct Stoichiometry {
  std::size_t num_states = 0;
  std::vector<std::vector<std::int64_t>> rows;
  std::vector<std::string> reactions;
};

template <ProtocolLike P>
Stoichiometry build_stoichiometry(const P& protocol) {
  const std::size_t s = protocol.num_states();
  Stoichiometry result;
  result.num_states = s;
  for (State a = 0; a < s; ++a) {
    for (State b = 0; b < s; ++b) {
      const Transition t = protocol.apply(a, b);
      if (is_null(t, a, b)) continue;
      std::vector<std::int64_t> delta(s, 0);
      --delta[a];
      --delta[b];
      ++delta[t.initiator];
      ++delta[t.responder];
      bool known = false;
      for (const std::vector<std::int64_t>& row : result.rows) {
        if (row == delta) {
          known = true;
          break;
        }
      }
      if (known) continue;
      std::ostringstream name;
      name << protocol.state_name(a) << " + " << protocol.state_name(b)
           << " -> " << protocol.state_name(t.initiator) << " + "
           << protocol.state_name(t.responder);
      result.rows.push_back(std::move(delta));
      result.reactions.push_back(name.str());
    }
  }
  return result;
}

// Integer basis of {w ∈ ℤ^s : row · w = 0 for every row}, returned in row
// Hermite normal form (deterministic: pivot entries positive, entries above
// a pivot reduced into [0, pivot)). The basis generates the full kernel
// lattice, and by saturation its rational span ∩ ℤ^s equals the lattice.
// Throws StoichiometryOverflow if exact elimination leaves 64 bits.
std::vector<std::vector<std::int64_t>> conserved_basis(
    const Stoichiometry& stoichiometry);

// Reduces `v` against the HNF basis; true iff v is an integer combination
// of the basis rows (equivalently, for a conserved_basis result: v is in
// the rational span). Requires matching widths.
bool lattice_member(const std::vector<std::vector<std::int64_t>>& hnf_basis,
                    std::vector<std::int64_t> v);

// True when the invariant's weight vector is spanned by the inferred basis.
bool implied_by(const std::vector<LinearInvariant>& basis,
                const LinearInvariant& invariant);

// "A=+1 B=-1 a=0 b=0" — weights keyed by state name, for findings.
template <ProtocolLike P>
std::string render_weights(const P& protocol,
                           const std::vector<std::int64_t>& weights) {
  std::ostringstream os;
  for (State q = 0; q < weights.size(); ++q) {
    if (q != 0) os << " ";
    os << protocol.state_name(q) << "=" << (weights[q] > 0 ? "+" : "")
       << weights[q];
  }
  return os.str();
}

struct InferenceResult {
  Stoichiometry stoichiometry;
  // The canonical conserved basis wrapped as prover-ready invariants,
  // one per kernel dimension, named "inferred[k]".
  std::vector<LinearInvariant> invariants;
};

// The inference pass: builds the stoichiometry matrix, computes the full
// conserved basis, and re-proves every basis vector with the LinearInvariant
// checker. Check ids:
//   inference.dimension  (note)  — kernel dimension and matrix shape
//   inference.invariant  (note)  — one per inferred conservation law
//   inference.unsound    (error) — the prover refuted an inferred law
//                                  (indicates a bug in the elimination; the
//                                  re-proof exists precisely to catch it)
//   inference.overflow   (error) — exact elimination left 64 bits
template <ProtocolLike P>
InferenceResult check_inferred_invariants(const P& protocol, Report& report) {
  InferenceResult result;
  result.stoichiometry = build_stoichiometry(protocol);

  std::vector<std::vector<std::int64_t>> basis;
  try {
    basis = conserved_basis(result.stoichiometry);
  } catch (const StoichiometryOverflow& e) {
    report.error("inference.overflow", e.what());
    return result;
  }

  {
    std::ostringstream os;
    os << basis.size() << " independent linear conserved quantities ("
       << result.stoichiometry.rows.size() << " distinct net-change vectors, "
       << protocol.num_states() << " states, rank "
       << protocol.num_states() - basis.size() << ")";
    report.note("inference.dimension", os.str());
  }

  for (std::size_t k = 0; k < basis.size(); ++k) {
    std::ostringstream name;
    name << "inferred[" << k << "]";
    LinearInvariant invariant(name.str(), basis[k]);

    Report proof;
    const std::size_t violations =
        check_conservation(protocol, invariant, proof);
    if (violations != 0) {
      std::ostringstream os;
      os << "inferred basis vector " << k << " ("
         << render_weights(protocol, basis[k]) << ") was refuted by the "
         << "conservation prover (" << violations << " violating transitions)";
      report.error("inference.unsound", os.str(), name.str());
    } else {
      std::ostringstream os;
      os << "conserved: " << render_weights(protocol, basis[k])
         << " (re-proved over all " << protocol.num_states() << "x"
         << protocol.num_states() << " ordered transitions)";
      report.note("inference.invariant", os.str(), name.str());
    }
    result.invariants.push_back(std::move(invariant));
  }
  return result;
}

// Cross-check of hand-declared conservation laws against the inferred
// basis. A declared invariant that really is conserved always lies in the
// span (inference is complete); one that does not is refuted independently
// by check_conservation, so the mismatch is reported as a warning pointing
// at the declaration rather than a duplicate error.
template <ProtocolLike P>
void confirm_declared_invariants(const P& protocol,
                                 const std::vector<LinearInvariant>& declared,
                                 const InferenceResult& inference,
                                 Report& report) {
  for (const LinearInvariant& invariant : declared) {
    if (invariant.num_states() != protocol.num_states()) continue;
    std::vector<std::int64_t> weights(invariant.num_states());
    for (State q = 0; q < invariant.num_states(); ++q) {
      weights[q] = invariant.weight(q);
    }
    if (implied_by(inference.invariants, invariant)) {
      std::ostringstream os;
      os << "declared invariant '" << invariant.name()
         << "' is an integer combination of the inferred basis";
      report.note("inference.confirms", os.str());
    } else {
      std::ostringstream os;
      os << "declared invariant '" << invariant.name() << "' ("
         << render_weights(protocol, weights)
         << ") is outside the inferred conserved space - it cannot be "
         << "conserved by this transition table";
      report.warn("inference.not_implied", os.str());
    }
  }
}

}  // namespace popbean::verify
