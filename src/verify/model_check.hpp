// Exhaustive configuration-space model checking (DESIGN.md §10).
//
// For every population size n ≤ max_n and every non-tie input split, the
// checker walks the *reachable* configuration graph (lazily interned nodes,
// expanded exactly once regardless of how many splits reach them — the
// memoization that makes the per-n sweep cheap), runs Tarjan's SCC
// algorithm over the explored region, and classifies every terminal
// strongly-connected component:
//
//   * correct-stable — every configuration in the component is unanimous
//     for the split's initial majority: the protocol stabilizes correctly
//     through this component;
//   * wrong-stable   — unanimous for the minority: an execution can commit
//     to the wrong answer (fatal for an exact-majority protocol);
//   * livelock       — the component mixes outputs (some configuration is
//     non-unanimous, or unanimous configurations of both outputs cycle):
//     fair executions trapped here never stabilize their output.
//
// Soundness: the explored region is closed under δ (every interned node is
// fully expanded), so SCC terminality and reachability computed on it are
// exact, and the verdict is a *certificate* up to max_n — a "certified"
// note means no reachable execution of any analysed instance can stabilize
// wrong or livelock, the finite instantiation of the paper's Theorem 4.1.
// This subsumes the small-n search (which only looks for wrong unanimity)
// by also ruling out livelocks and by witnessing violations constructively:
// every violation carries the shortest interaction schedule (BFS parent
// pointers) from the initial configuration to the offending component,
// which src/recovery/counterexample.hpp turns into a replayable .pbsn
// capture.
//
// The checker also records which δ-table cells ever fire on a reachable
// edge; structure.hpp's dead-transition lint cross-checks that against the
// static pair-closure reachability.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "util/check.hpp"
#include "verify/finding.hpp"
#include "verify/small_n.hpp"

namespace popbean::verify {

struct ModelCheckOptions {
  std::uint64_t max_n = 8;            // analyse n = 2 … max_n
  std::uint64_t max_nodes = 200'000;  // per-n reachable-configuration budget
  // Exact-majority protocols: wrong-stable and livelock components are
  // errors. Approximate protocols (voter, three-state) reach wrong unanimity
  // by design, so the same verdicts are reported as notes.
  bool expect_stabilization = true;
  std::size_t max_counterexamples = 4;  // schedules extracted, total
};

// A concrete violating execution: applying `schedule` (ordered interactions,
// initiator state first) to `initial` reaches `witness`, a configuration
// inside a wrong-stable or livelock terminal component. The schedule is
// shortest in interaction count for this witness (BFS).
struct Counterexample {
  std::string kind;  // "wrong_stable" | "livelock"
  std::uint64_t n = 0;
  std::uint64_t count_a = 0;
  Counts initial;
  Counts witness;
  std::vector<std::pair<State, State>> schedule;
};

struct ModelCheckSummary {
  std::uint64_t searched_up_to = 0;  // largest fully analysed n
  std::uint64_t splits = 0;          // (n, split) instances analysed
  std::uint64_t nodes = 0;           // distinct configurations interned
  std::uint64_t edges = 0;
  std::uint64_t sccs = 0;
  std::uint64_t terminal_sccs = 0;
  std::uint64_t shared_nodes = 0;    // reached by more than one split
  // Reachable terminal components by class, summed over analysed splits.
  std::uint64_t correct_stable = 0;
  std::uint64_t wrong_stable = 0;
  std::uint64_t livelocks = 0;
  std::vector<bool> fired;  // s·s: δ cell fired on some reachable edge
};

struct ModelCheckResult {
  ModelCheckSummary summary;
  std::vector<Counterexample> counterexamples;
};

namespace detail {

struct CountsHash {
  std::size_t operator()(const Counts& counts) const noexcept {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
    for (const std::uint64_t x : counts) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

// Output-label bits of a configuration; an SCC's label is the union over
// its configurations.
inline constexpr unsigned kAllZero = 1;  // unanimous output 0
inline constexpr unsigned kAllOne = 2;   // unanimous output 1
inline constexpr unsigned kMixed = 4;    // both outputs present

inline constexpr std::uint32_t kNoNode = 0xffffffffu;

// One population size's reachable configuration graph plus its analysis.
// Templated over the protocol only for label computation; transitions are
// tabulated once up front so node expansion never calls into the protocol.
template <ProtocolLike P>
class PopulationModel {
 public:
  struct Edge {
    std::uint32_t target;
    std::uint32_t reaction;  // a * s + b
  };

  PopulationModel(const P& protocol, std::uint64_t max_nodes)
      : protocol_(protocol),
        s_(protocol.num_states()),
        max_nodes_(max_nodes) {
    transitions_.resize(s_ * s_);
    productive_.resize(s_ * s_);
    for (State a = 0; a < s_; ++a) {
      for (State b = 0; b < s_; ++b) {
        const Transition t = protocol.apply(a, b);
        transitions_[a * s_ + b] = t;
        productive_[a * s_ + b] = !is_null(t, a, b);
      }
    }
  }

  std::uint64_t num_nodes() const noexcept { return configs_.size(); }
  std::uint64_t num_edges() const noexcept { return edge_count_; }
  const Counts& config(std::uint32_t id) const { return configs_[id]; }
  const std::vector<Edge>& out_edges(std::uint32_t id) const {
    return adj_[id];
  }
  unsigned label(std::uint32_t id) const { return labels_[id]; }
  std::uint64_t visits(std::uint32_t id) const { return visit_count_[id]; }

  // Interns a configuration; nullopt once the node budget is exhausted.
  std::optional<std::uint32_t> intern(const Counts& config) {
    const auto it = index_.find(config);
    if (it != index_.end()) return it->second;
    if (configs_.size() >= max_nodes_) return std::nullopt;
    const auto id = static_cast<std::uint32_t>(configs_.size());
    index_.emplace(config, id);
    configs_.push_back(config);
    adj_.emplace_back();
    expanded_.push_back(false);
    visit_count_.push_back(0);
    unsigned label = 0;
    std::uint64_t out[2] = {0, 0};
    for (State q = 0; q < s_; ++q) {
      out[protocol_.output(q) == 0 ? 0 : 1] += config[q];
    }
    if (out[0] != 0 && out[1] != 0) {
      label = kMixed;
    } else {
      label = out[1] != 0 ? kAllOne : kAllZero;
    }
    labels_.push_back(static_cast<std::uint8_t>(label));
    return id;
  }

  // Expands every reachable node from `root` (breadth-first), interning
  // successors; a node already expanded by an earlier split is reused as-is.
  // Marks fired reactions. Returns false when the node budget is hit.
  bool expand_from(std::uint32_t root, std::vector<bool>& fired) {
    std::vector<std::uint32_t> frontier = {root};
    while (!frontier.empty()) {
      const std::uint32_t id = frontier.back();
      frontier.pop_back();
      if (expanded_[id]) continue;
      expanded_[id] = true;
      // By value: intern() below grows configs_, invalidating references.
      const Counts config = configs_[id];
      for (State a = 0; a < s_; ++a) {
        if (config[a] == 0) continue;
        for (State b = 0; b < s_; ++b) {
          if (!productive_[a * s_ + b]) continue;
          if (config[b] < (a == b ? 2u : 1u)) continue;
          Counts next = config;
          const Transition& t = transitions_[a * s_ + b];
          --next[a];
          --next[b];
          ++next[t.initiator];
          ++next[t.responder];
          const std::optional<std::uint32_t> target = intern(next);
          if (!target) return false;
          adj_[id].push_back({*target, static_cast<std::uint32_t>(a * s_ + b)});
          ++edge_count_;
          fired[a * s_ + b] = true;
          if (!expanded_[*target]) frontier.push_back(*target);
        }
      }
    }
    return true;
  }

  // Tarjan SCC over the (closed) explored region; fills scc ids, per-SCC
  // label unions, and terminal flags. Iterative: configuration graphs have
  // paths of length Θ(n²), which would blow the call stack recursively.
  void analyze_sccs() {
    const auto n = static_cast<std::uint32_t>(configs_.size());
    scc_id_.assign(n, kNoNode);
    std::vector<std::uint32_t> disc(n, kNoNode);
    std::vector<std::uint32_t> low(n, 0);
    std::vector<std::uint32_t> stack;
    std::vector<bool> on_stack(n, false);
    struct Frame {
      std::uint32_t node;
      std::uint32_t edge;
    };
    std::vector<Frame> frames;
    std::uint32_t time = 0;
    scc_count_ = 0;

    for (std::uint32_t root = 0; root < n; ++root) {
      if (disc[root] != kNoNode) continue;
      frames.push_back({root, 0});
      while (!frames.empty()) {
        Frame& frame = frames.back();
        const std::uint32_t v = frame.node;
        if (frame.edge == 0) {
          disc[v] = low[v] = time++;
          stack.push_back(v);
          on_stack[v] = true;
        }
        if (frame.edge < adj_[v].size()) {
          const std::uint32_t w = adj_[v][frame.edge].target;
          ++frame.edge;
          if (disc[w] == kNoNode) {
            frames.push_back({w, 0});
          } else if (on_stack[w]) {
            low[v] = std::min(low[v], disc[w]);
          }
          continue;
        }
        if (low[v] == disc[v]) {  // v roots an SCC
          const std::uint32_t sid = scc_count_++;
          while (true) {
            const std::uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc_id_[w] = sid;
            if (w == v) break;
          }
        }
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node], low[v]);
        }
      }
    }

    scc_label_.assign(scc_count_, 0);
    scc_size_.assign(scc_count_, 0);
    scc_terminal_.assign(scc_count_, true);
    for (std::uint32_t v = 0; v < n; ++v) {
      scc_label_[scc_id_[v]] |= labels_[v];
      ++scc_size_[scc_id_[v]];
      for (const Edge& e : adj_[v]) {
        if (scc_id_[e.target] != scc_id_[v]) {
          scc_terminal_[scc_id_[v]] = false;
        }
      }
    }
  }

  std::uint32_t num_sccs() const noexcept { return scc_count_; }
  std::uint32_t scc_of(std::uint32_t id) const { return scc_id_[id]; }
  unsigned scc_label(std::uint32_t sid) const { return scc_label_[sid]; }
  std::uint64_t scc_size(std::uint32_t sid) const { return scc_size_[sid]; }
  bool scc_terminal(std::uint32_t sid) const { return scc_terminal_[sid]; }
  std::uint64_t terminal_scc_count() const {
    std::uint64_t total = 0;
    for (std::uint32_t sid = 0; sid < scc_count_; ++sid) {
      if (scc_terminal_[sid]) ++total;
    }
    return total;
  }

  // BFS over the static graph recording shortest-path parents; calls
  // `visit(node)` once per reached node in BFS (depth) order. Also bumps
  // the per-node visit counter backing the shared-region statistic.
  template <typename Visit>
  void bfs(std::uint32_t root, Visit&& visit) {
    seen_.assign(configs_.size(), false);
    parent_.assign(configs_.size(), kNoNode);
    parent_reaction_.assign(configs_.size(), 0);
    std::vector<std::uint32_t> queue = {root};
    seen_[root] = true;
    std::size_t head = 0;
    while (head < queue.size()) {
      const std::uint32_t v = queue[head++];
      ++visit_count_[v];
      visit(v);
      for (const Edge& e : adj_[v]) {
        if (seen_[e.target]) continue;
        seen_[e.target] = true;
        parent_[e.target] = v;
        parent_reaction_[e.target] = e.reaction;
        queue.push_back(e.target);
      }
    }
  }

  // Shortest interaction schedule from the last bfs() root to `id`.
  std::vector<std::pair<State, State>> schedule_to(std::uint32_t id) const {
    std::vector<std::pair<State, State>> schedule;
    for (std::uint32_t v = id; parent_[v] != kNoNode; v = parent_[v]) {
      const std::uint32_t r = parent_reaction_[v];
      schedule.emplace_back(static_cast<State>(r / s_),
                            static_cast<State>(r % s_));
    }
    std::reverse(schedule.begin(), schedule.end());
    return schedule;
  }

 private:
  const P& protocol_;
  std::size_t s_;
  std::uint64_t max_nodes_;
  std::vector<Transition> transitions_;
  std::vector<bool> productive_;

  std::unordered_map<Counts, std::uint32_t, CountsHash> index_;
  std::vector<Counts> configs_;
  std::vector<std::vector<Edge>> adj_;
  std::vector<bool> expanded_;
  std::vector<std::uint8_t> labels_;
  std::vector<std::uint64_t> visit_count_;
  std::uint64_t edge_count_ = 0;

  std::uint32_t scc_count_ = 0;
  std::vector<std::uint32_t> scc_id_;
  std::vector<unsigned> scc_label_;
  std::vector<std::uint64_t> scc_size_;
  std::vector<bool> scc_terminal_;

  std::vector<bool> seen_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> parent_reaction_;
};

}  // namespace detail

// Analyses one population size; returns false when the node budget was
// exhausted (the caller stops the n sweep and reports how far it got).
template <ProtocolLike P>
bool model_check_population(const P& protocol, std::uint64_t n,
                            const ModelCheckOptions& options, Report& report,
                            ModelCheckSummary& summary,
                            std::vector<Counterexample>& counterexamples) {
  detail::PopulationModel<P> model(protocol, options.max_nodes);

  // Phase 1: intern + expand the union of all splits' reachable regions.
  std::vector<std::uint32_t> initial_ids(n + 1, detail::kNoNode);
  for (std::uint64_t count_a = 0; count_a <= n; ++count_a) {
    if (2 * count_a == n) continue;  // ties are out of scope (§2)
    const Counts initial = majority_instance(protocol, n, count_a);
    const std::optional<std::uint32_t> root = model.intern(initial);
    if (!root || !model.expand_from(*root, summary.fired)) return false;
    initial_ids[count_a] = *root;
  }

  // Phase 2: SCCs + terminal classification over the closed region.
  model.analyze_sccs();

  // Phase 3: per-split verdicts over the now-static graph.
  const Severity severity =
      options.expect_stabilization ? Severity::kError : Severity::kNote;
  std::vector<std::uint64_t> scc_stamp(model.num_sccs(), ~std::uint64_t{0});
  for (std::uint64_t count_a = 0; count_a <= n; ++count_a) {
    if (initial_ids[count_a] == detail::kNoNode) continue;
    ++summary.splits;
    const Output majority = 2 * count_a > n ? 1 : 0;
    const unsigned majority_label =
        majority == 1 ? detail::kAllOne : detail::kAllZero;
    model.bfs(initial_ids[count_a], [&](std::uint32_t node) {
      const std::uint32_t sid = model.scc_of(node);
      if (!model.scc_terminal(sid)) return;
      if (scc_stamp[sid] == count_a) return;  // classified for this split
      scc_stamp[sid] = count_a;

      std::ostringstream where;
      where << "n=" << n << " split=" << count_a << "A/" << (n - count_a)
            << "B";
      const unsigned label = model.scc_label(sid);
      std::string kind;
      if (label == majority_label) {
        ++summary.correct_stable;
        return;
      }
      if (label == detail::kAllZero || label == detail::kAllOne) {
        ++summary.wrong_stable;
        kind = "wrong_stable";
        std::ostringstream os;
        os << "n = " << n << ", split " << count_a << "A/" << (n - count_a)
           << "B: terminal component (" << model.scc_size(sid)
           << " configurations) with unanimous wrong output is reachable; "
           << "witness " << render_config(protocol, model.config(node))
           << " (all agents output " << (1 - majority)
           << ", initial majority was " << majority << ")";
        report.add(severity, "model_check.wrong_stable", os.str(),
                   where.str());
      } else {
        ++summary.livelocks;
        kind = "livelock";
        std::ostringstream os;
        os << "n = " << n << ", split " << count_a << "A/" << (n - count_a)
           << "B: terminal component (" << model.scc_size(sid)
           << " configurations) that never reaches a unanimous output is "
           << "reachable; witness "
           << render_config(protocol, model.config(node));
        report.add(severity, "model_check.livelock", os.str(), where.str());
      }
      if (counterexamples.size() < options.max_counterexamples) {
        Counterexample cex;
        cex.kind = kind;
        cex.n = n;
        cex.count_a = count_a;
        cex.initial = model.config(initial_ids[count_a]);
        cex.witness = model.config(node);
        cex.schedule = model.schedule_to(node);
        counterexamples.push_back(std::move(cex));
      }
    });
  }

  for (std::uint32_t id = 0; id < model.num_nodes(); ++id) {
    if (model.visits(id) > 1) ++summary.shared_nodes;
  }
  summary.nodes += model.num_nodes();
  summary.edges += model.num_edges();
  summary.sccs += model.num_sccs();
  summary.terminal_sccs += model.terminal_scc_count();
  return true;
}

// The model-checking pass. Check ids:
//   model_check.wrong_stable — reachable terminal component, wrong unanimity
//   model_check.livelock     — reachable terminal component, output unstable
//   (both: errors when options.expect_stabilization, notes otherwise)
//   model_check.certified    (note) — exact stabilization certified ≤ max_n
//   model_check.outcomes     (note) — verdict tally for approximate protocols
//   model_check.summary      (note) — graph statistics
//   model_check.budget       (note) — node budget stopped the n sweep
template <ProtocolLike P>
ModelCheckResult check_model(const P& protocol, Report& report,
                             const ModelCheckOptions& options = {}) {
  const std::size_t s = protocol.num_states();
  ModelCheckResult result;
  result.summary.fired.assign(s * s, false);

  for (std::uint64_t n = 2; n <= options.max_n; ++n) {
    if (!model_check_population(protocol, n, options, report, result.summary,
                                result.counterexamples)) {
      std::ostringstream os;
      os << "reachable-configuration budget (" << options.max_nodes
         << " nodes) exhausted at n = " << n << "; analysed n <= "
         << result.summary.searched_up_to;
      report.note("model_check.budget", os.str());
      break;
    }
    result.summary.searched_up_to = n;
  }

  const ModelCheckSummary& summary = result.summary;
  if (summary.searched_up_to >= 2) {
    std::ostringstream os;
    os << "explored " << summary.nodes << " configurations, " << summary.edges
       << " transitions, " << summary.sccs << " SCCs ("
       << summary.terminal_sccs << " terminal) across " << summary.splits
       << " instances; " << summary.shared_nodes
       << " configurations shared between splits";
    report.note("model_check.summary", os.str());

    if (summary.wrong_stable == 0 && summary.livelocks == 0) {
      // Only certify when the requested sweep completed: a budget-truncated
      // run degrades to the model_check.budget note, never a certificate.
      if (options.expect_stabilization &&
          summary.searched_up_to == options.max_n) {
        std::ostringstream cert;
        cert << "correct stabilization certified for every non-tie split, "
             << "n = 2 ... " << summary.searched_up_to << " ("
             << summary.correct_stable
             << " reachable terminal components, all correct-stable)";
        report.note("model_check.certified", cert.str());
      }
    }
    if (!options.expect_stabilization || summary.wrong_stable != 0 ||
        summary.livelocks != 0) {
      std::ostringstream os2;
      os2 << "reachable terminal components: " << summary.correct_stable
          << " correct-stable, " << summary.wrong_stable << " wrong-stable, "
          << summary.livelocks << " livelock";
      report.note("model_check.outcomes", os2.str());
    }
  }
  return result;
}

}  // namespace popbean::verify
