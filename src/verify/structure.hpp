// Structural classification of a protocol's transition table.
//
// Everything here is computed exhaustively over the s × s table:
//
//   * symmetry        — the *multiset* of result states is the same for
//                       δ(a, b) and δ(b, a): the protocol is oblivious to
//                       which participant initiated. (Multiset, not ordered
//                       equivariance: AVC's averaging rule emits (R↓, R↑)
//                       in that order for both argument orders, which is
//                       still role-oblivious since configurations only see
//                       counts.) AVC and the four-state protocol are
//                       symmetric; three-state and voter are not;
//   * one-wayness     — the initiator never changes state ([AAE08]-style
//                       protocols; relevant to CRN compilation);
//   * null density    — fraction of ordered pairs whose interaction is a
//                       no-op. This is the quantity the skip engine exploits
//                       (geometric batching of null interactions): a high
//                       density near convergence is why skipping wins.
//   * reachability    — least fixpoint of the pair-interaction closure from
//                       the two input states, i.e. the states that can occur
//                       in *some* majority configuration of *some* population
//                       size. States outside the fixpoint are dead table
//                       rows: unreachable from any majority instance.
//
// The fixpoint is sound for arbitrary n: if a and b are both reachable then
// some configuration holds both simultaneously (population protocols have no
// way to forbid co-occurrence — counts only grow the reachable set), so
// closing under every ordered pair of reachable states is exact, not an
// over-approximation. This matches the paper's notion of configurations
// "reachable from the initial configuration" used throughout §4.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "obs/probe.hpp"
#include "population/protocol.hpp"
#include "verify/finding.hpp"

namespace popbean::verify {

struct ProtocolStructure {
  bool symmetric = false;       // δ(a,b) and δ(b,a) yield the same multiset
  bool one_way = false;         // initiator never changes
  std::size_t productive_pairs = 0;  // ordered pairs with a non-null effect
  double null_density = 0.0;    // 1 − productive / s²
  std::vector<bool> reachable;  // per-state, from {initial A, initial B}
  std::vector<State> unreachable;  // ids with reachable[q] == false
};

// Requires a well-formed protocol (run check_well_formed first); transitions
// that leave the state space are ignored defensively rather than followed.
template <ProtocolLike P>
ProtocolStructure analyze_structure(const P& protocol) {
  const std::size_t s = protocol.num_states();
  ProtocolStructure result;
  result.symmetric = true;
  result.one_way = true;

  for (State a = 0; a < s; ++a) {
    for (State b = 0; b < s; ++b) {
      const Transition t = protocol.apply(a, b);
      if (!is_null(t, a, b)) ++result.productive_pairs;
      if (t.initiator != a) result.one_way = false;
      const Transition mirrored = protocol.apply(b, a);
      const bool same_multiset =
          (t.initiator == mirrored.responder &&
           t.responder == mirrored.initiator) ||
          (t.initiator == mirrored.initiator &&
           t.responder == mirrored.responder);
      if (!same_multiset) result.symmetric = false;
    }
  }
  const double total = static_cast<double>(s) * static_cast<double>(s);
  result.null_density =
      1.0 - static_cast<double>(result.productive_pairs) / total;

  // Pair-interaction closure from the two input states.
  result.reachable.assign(s, false);
  const State init_a = protocol.initial_state(Opinion::A);
  const State init_b = protocol.initial_state(Opinion::B);
  if (init_a < s) result.reachable[init_a] = true;
  if (init_b < s) result.reachable[init_b] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (State a = 0; a < s; ++a) {
      if (!result.reachable[a]) continue;
      for (State b = 0; b < s; ++b) {
        if (!result.reachable[b]) continue;
        const Transition t = protocol.apply(a, b);
        if (t.initiator < s && !result.reachable[t.initiator]) {
          result.reachable[t.initiator] = true;
          changed = true;
        }
        if (t.responder < s && !result.reachable[t.responder]) {
          result.reachable[t.responder] = true;
          changed = true;
        }
      }
    }
  }
  for (State q = 0; q < s; ++q) {
    if (!result.reachable[q]) result.unreachable.push_back(q);
  }
  return result;
}

// Reports the classification as notes and each unreachable state as a
// warning (check ids "structure.*"). Dead states are not an error — a codec
// may reserve ids — but every one is a table row no majority execution can
// exercise, so tests and invariants silently never cover it.
template <ProtocolLike P>
ProtocolStructure check_structure(const P& protocol, Report& report) {
  const ProtocolStructure structure = analyze_structure(protocol);

  std::ostringstream os;
  os << (structure.symmetric ? "symmetric" : "asymmetric") << ", "
     << (structure.one_way ? "one-way" : "two-way") << ", "
     << structure.productive_pairs << " productive ordered pairs, null density "
     << structure.null_density;
  report.note("structure.classification", os.str());

  for (const State q : structure.unreachable) {
    std::ostringstream warning;
    warning << "state " << protocol.state_name(q) << " (q" << q
            << ") is unreachable from every majority instance";
    report.warn("structure.unreachable_state", warning.str());
  }
  return structure;
}

// Dead-transition lint: productive δ-entries the model checker never fired
// on any reachable edge of any analysed instance (n ≤ searched_up_to, all
// non-tie splits). `fired` is ModelCheckSummary::fired. Report-only
// (notes): a never-firing entry is dead weight, not a bug — the table cell
// may need co-occurring states that no small population produces — but it
// is code no test or invariant exercise covers. Each finding cross-checks
// the static pair-closure (analyze_structure): a dead entry whose source
// states are *inside* the closure is the interesting case, since the purely
// static analysis considered it live. The obs ReactionKind classification
// tags what kind of reaction is going unexercised.
template <ProtocolLike P>
std::size_t check_dead_transitions(const P& protocol,
                                   const std::vector<bool>& fired,
                                   std::uint64_t searched_up_to,
                                   Report& report) {
  const std::size_t s = protocol.num_states();
  if (fired.size() != s * s || searched_up_to < 2) return 0;
  const ProtocolStructure structure = analyze_structure(protocol);
  std::size_t dead = 0;
  for (State a = 0; a < s; ++a) {
    for (State b = 0; b < s; ++b) {
      const Transition t = protocol.apply(a, b);
      if (is_null(t, a, b)) continue;
      if (fired[a * s + b]) continue;
      ++dead;
      const obs::ReactionKind kind =
          obs::classify_interaction(protocol, a, b);
      const bool statically_live =
          a < structure.reachable.size() && structure.reachable[a] &&
          b < structure.reachable.size() && structure.reachable[b];
      std::ostringstream os;
      os << "productive transition " << protocol.state_name(a) << " + "
         << protocol.state_name(b) << " -> "
         << protocol.state_name(t.initiator) << " + "
         << protocol.state_name(t.responder) << " ("
         << obs::reaction_kind_name(kind)
         << ") never fired on any reachable edge, n <= " << searched_up_to
         << (statically_live
                 ? "; both source states are in the static pair-closure"
                 : "; a source state is already statically unreachable");
      std::ostringstream where;
      where << "delta " << a << " " << b;
      report.note("structure.dead_transition", os.str(), where.str());
    }
  }
  return dead;
}

}  // namespace popbean::verify
