// Linear invariants: weight vectors conserved by every transition.
//
// A weight vector w : Q → ℤ induces the configuration functional
// Φ(c) = Σ_q w(q)·c(q). Φ is conserved along *every* execution iff every
// ordered transition δ(a, b) = (a′, b′) satisfies
//
//     w(a′) + w(b′) = w(a) + w(b),
//
// a purely local, exhaustively checkable condition — s² equations, no
// simulation. This is the static counterpart of the trajectory checker in
// analysis/invariants.hpp: where that spot-checks Invariant 4.3 along
// sampled runs, check_conservation *proves* it for all runs at once
// (the paper's Invariant 4.3 is exactly the statement for w = value).
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "util/check.hpp"
#include "verify/finding.hpp"

namespace popbean::verify {

class LinearInvariant {
 public:
  LinearInvariant(std::string name, std::vector<std::int64_t> weights)
      : name_(std::move(name)), weights_(std::move(weights)) {
    POPBEAN_CHECK_MSG(!weights_.empty(), "invariant needs at least one state");
  }

  const std::string& name() const noexcept { return name_; }
  std::size_t num_states() const noexcept { return weights_.size(); }

  std::int64_t weight(State q) const {
    POPBEAN_CHECK(q < weights_.size());
    return weights_[q];
  }

  // Φ(c) = Σ_q w(q)·c(q).
  std::int64_t value(const Counts& counts) const {
    POPBEAN_CHECK(counts.size() == weights_.size());
    std::int64_t total = 0;
    for (State q = 0; q < weights_.size(); ++q) {
      total += weights_[q] * static_cast<std::int64_t>(counts[q]);
    }
    return total;
  }

  // Local conservation of one ordered transition.
  bool preserved_by(State a, State b, const Transition& t) const {
    return weight(t.initiator) + weight(t.responder) == weight(a) + weight(b);
  }

 private:
  std::string name_;
  std::vector<std::int64_t> weights_;
};

// Exhaustively checks w(a′)+w(b′) = w(a)+w(b) over all ordered pairs; adds
// one error finding per violating transition (check
// "invariant.conservation"), rendered as the offending reaction. Returns
// the number of violations. Requires a well-formed protocol whose state
// count matches the invariant's.
template <ProtocolLike P>
std::size_t check_conservation(const P& protocol,
                               const LinearInvariant& invariant,
                               Report& report) {
  POPBEAN_CHECK_MSG(invariant.num_states() == protocol.num_states(),
                    "invariant weight vector does not match the state space");
  const std::size_t s = protocol.num_states();
  std::size_t violations = 0;
  for (State a = 0; a < s; ++a) {
    for (State b = 0; b < s; ++b) {
      const Transition t = protocol.apply(a, b);
      if (invariant.preserved_by(a, b, t)) continue;
      ++violations;
      std::ostringstream os;
      os << "invariant '" << invariant.name() << "' broken by "
         << protocol.state_name(a) << " + " << protocol.state_name(b)
         << " -> " << protocol.state_name(t.initiator) << " + "
         << protocol.state_name(t.responder) << " (weight "
         << invariant.weight(a) + invariant.weight(b) << " -> "
         << invariant.weight(t.initiator) + invariant.weight(t.responder)
         << ")";
      report.error("invariant.conservation", os.str());
    }
  }
  return violations;
}

// --- Generic instances ------------------------------------------------------

// Σ_q c(q) = n: conserved by construction in the pairwise model (every
// interaction maps two agents to two agents), so any violation means the
// table encodes something other than a population protocol. Holds for every
// ProtocolLike by the shape of Transition; kept as the degenerate sanity
// instance (and the only linear invariant of the three-state protocol).
template <ProtocolLike P>
LinearInvariant agent_count_invariant(const P& protocol) {
  return LinearInvariant("agent count",
                         std::vector<std::int64_t>(protocol.num_states(), 1));
}

// The output-count difference Σ_{γ(q)=1} c(q) − Σ_{γ(q)=0} c(q). Almost no
// protocol conserves this — any transition that flips an agent's output
// moves it by ±2 (voter's (A,B)→(A,A) does exactly that) — so it serves as
// a deliberately-usually-broken instance for exercising the checker's
// violation reporting in tests and fixtures.
template <ProtocolLike P>
LinearInvariant output_balance_invariant(const P& protocol) {
  std::vector<std::int64_t> weights(protocol.num_states());
  for (State q = 0; q < protocol.num_states(); ++q) {
    weights[q] = protocol.output(q) == 1 ? +1 : -1;
  }
  return LinearInvariant("output balance", std::move(weights));
}

}  // namespace popbean::verify
