// The shipped protocols' conservation laws as LinearInvariant instances.
//
// These are the weight vectors the correctness proofs rest on:
//
//   * AVC           — w(q) = value(q) = sign·weight. Conservation over all
//                     s² transitions is exactly the paper's Invariant 4.3,
//                     proved here by exhaustive enumeration instead of the
//                     per-reaction case analysis of §4.
//   * four-state    — w = (+1, −1, 0, 0) on (A, B, a, b): the #A − #B
//                     difference behind [DV12]'s exactness (and Claim B.8's
//                     canonical form of any correct four-state protocol).
//   * three-state   — conserves nothing beyond the agent count (that is the
//                     structural reason it cannot be exact; Thm B.1's
//                     dichotomy), so its only instance is the generic
//                     agent_count_invariant.
#pragma once

#include <cstdint>
#include <vector>

#include "core/avc.hpp"
#include "protocols/four_state.hpp"
#include "verify/linear_invariant.hpp"

namespace popbean::verify {

// Invariant 4.3: Σ over agents of sign·weight is conserved.
inline LinearInvariant avc_sum_invariant(const avc::AvcProtocol& protocol) {
  std::vector<std::int64_t> weights(protocol.num_states());
  for (State q = 0; q < protocol.num_states(); ++q) {
    weights[q] = protocol.value_of(q);
  }
  return LinearInvariant("AVC value sum (Invariant 4.3)", std::move(weights));
}

// #A − #B over the strong states; weak states carry weight 0.
inline LinearInvariant four_state_difference_invariant() {
  std::vector<std::int64_t> weights(4, 0);
  weights[FourStateProtocol::kStrongA] = +1;
  weights[FourStateProtocol::kStrongB] = -1;
  return LinearInvariant("four-state strong difference", std::move(weights));
}

}  // namespace popbean::verify
