// One-call driver composing every static check, used by popbean-lint and
// by tests that want a protocol "machine-checked" in a single line.
//
// Check order matters: structural and semantic checks index the transition
// table by the states it produces, so they only run when well-formedness
// passed — a malformed table yields exactly its well-formedness findings
// rather than a cascade of secondary noise.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "population/protocol.hpp"
#include "verify/finding.hpp"
#include "verify/linear_invariant.hpp"
#include "verify/small_n.hpp"
#include "verify/structure.hpp"
#include "verify/well_formed.hpp"

namespace popbean::verify {

struct VerifyOptions {
  // Conservation laws to prove over the full transition table.
  std::vector<LinearInvariant> invariants;

  // Walk the small-n configuration graphs proving no wrong-output
  // configuration is reachable. Enable only for protocols that claim
  // exact majority.
  bool check_exactness = false;
  SmallNOptions small_n;
};

template <ProtocolLike P>
Report run_all_checks(const P& protocol, std::string subject,
                      const VerifyOptions& options) {
  Report report(std::move(subject));
  check_well_formed(protocol, report);
  if (!report.ok()) return report;  // table not safely indexable

  check_structure(protocol, report);
  for (const LinearInvariant& invariant : options.invariants) {
    check_conservation(protocol, invariant, report);
  }
  if (options.check_exactness) {
    check_small_n_exact(protocol, report, options.small_n);
  }
  return report;
}

}  // namespace popbean::verify
