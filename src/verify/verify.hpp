// One-call driver composing every static-analysis pass, used by popbean-lint
// and by tests that want a protocol "machine-checked" in a single line.
//
// Check order matters: structural and semantic checks index the transition
// table by the states it produces, so they only run when well-formedness
// passed — a malformed table yields exactly its well-formedness findings
// rather than a cascade of secondary noise. The three DESIGN.md §10 passes
// slot in after the per-transition checks: invariant inference (conserved
// basis + re-proof + declared-invariant confirmation), exhaustive model
// checking (terminal-SCC classification up to max_n), and — fed by the
// model checker's fired-reaction map — the dead-transition lint.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "population/protocol.hpp"
#include "verify/finding.hpp"
#include "verify/linear_invariant.hpp"
#include "verify/model_check.hpp"
#include "verify/small_n.hpp"
#include "verify/stoichiometry.hpp"
#include "verify/structure.hpp"
#include "verify/well_formed.hpp"

namespace popbean::verify {

struct VerifyOptions {
  // Conservation laws to prove over the full transition table.
  std::vector<LinearInvariant> invariants;

  // Infer the complete basis of linear conserved quantities from the
  // stoichiometry matrix, re-prove each, and confirm that every declared
  // invariant is spanned by the basis.
  bool infer_invariants = false;

  // Walk the small-n configuration graphs proving no wrong-output
  // configuration is reachable. Enable only for protocols that claim
  // exact majority. Subsumed by model_check, kept for the cheaper
  // wrong-unanimity-only sweep.
  bool check_exactness = false;
  SmallNOptions small_n;

  // Exhaustive configuration-graph model checking: classify every
  // reachable terminal SCC for every split at every n ≤ max_n, then lint
  // δ-entries that never fired on a reachable edge.
  bool model_check = false;
  ModelCheckOptions model_checker;
};

// Everything a verification run produces: the findings plus the machine
// halves of the inference and model-checking passes, so callers (lint's
// counterexample emission, tests) can act on them without re-running.
struct VerifyOutcome {
  Report report;
  InferenceResult inference;
  ModelCheckResult model;
};

template <ProtocolLike P>
VerifyOutcome run_verification(const P& protocol, std::string subject,
                               const VerifyOptions& options) {
  VerifyOutcome outcome{Report(std::move(subject)), {}, {}};
  Report& report = outcome.report;
  check_well_formed(protocol, report);
  if (!report.ok()) return outcome;  // table not safely indexable

  check_structure(protocol, report);
  for (const LinearInvariant& invariant : options.invariants) {
    check_conservation(protocol, invariant, report);
  }
  if (options.infer_invariants) {
    outcome.inference = check_inferred_invariants(protocol, report);
    confirm_declared_invariants(protocol, options.invariants,
                                outcome.inference, report);
  }
  if (options.check_exactness) {
    check_small_n_exact(protocol, report, options.small_n);
  }
  if (options.model_check) {
    outcome.model = check_model(protocol, report, options.model_checker);
    check_dead_transitions(protocol, outcome.model.summary.fired,
                           outcome.model.summary.searched_up_to, report);
  }
  return outcome;
}

// Compatibility wrapper over run_verification for callers that only want
// the findings.
template <ProtocolLike P>
Report run_all_checks(const P& protocol, std::string subject,
                      const VerifyOptions& options) {
  return run_verification(protocol, std::move(subject), options).report;
}

}  // namespace popbean::verify
