// Well-formedness: the protocol is a total function on its declared state
// space. Checked exhaustively over all s × s ordered pairs — no simulation,
// no sampling.
//
// Violations here are unconditionally errors: an out-of-range transition
// target corrupts every count-indexed engine silently (the engines index
// count vectors by the returned ids), and a non-binary output breaks the
// convergence predicate "all agents map to the same output".
#pragma once

#include <cstddef>
#include <sstream>
#include <string>

#include "population/protocol.hpp"
#include "verify/finding.hpp"

namespace popbean::verify {

// Renders a state id for diagnostics, falling back to "q<id>" when the id
// is outside the declared space (state_name may legitimately reject it).
template <ProtocolLike P>
std::string safe_state_name(const P& protocol, State q) {
  if (q < protocol.num_states()) return protocol.state_name(q);
  std::string text = "q";
  text += std::to_string(q);
  text += "<out-of-range>";
  return text;
}

// Checks, for every ordered pair (a, b) of declared states:
//   * apply(a, b) yields two states inside [0, num_states());
//   * output(q) ∈ {0, 1} for every state;
//   * initial_state(op) is a declared state for both opinions;
// and that the state space is non-empty. Adds one error finding per
// violation (check ids "well_formed.*").
template <ProtocolLike P>
void check_well_formed(const P& protocol, Report& report) {
  const std::size_t s = protocol.num_states();
  if (s == 0) {
    report.error("well_formed.state_space", "protocol declares zero states");
    return;
  }

  for (const Opinion op : {Opinion::A, Opinion::B}) {
    const State q = protocol.initial_state(op);
    if (q >= s) {
      std::ostringstream os;
      os << "initial state for opinion " << (op == Opinion::A ? "A" : "B")
         << " is q" << q << ", outside [0, " << s << ")";
      report.error("well_formed.initial_state", os.str());
    }
  }

  for (State q = 0; q < s; ++q) {
    const Output out = protocol.output(q);
    if (out != 0 && out != 1) {
      std::ostringstream os;
      os << "output(" << protocol.state_name(q) << ") = " << out
         << ", not in {0, 1}";
      report.error("well_formed.output_range", os.str());
    }
  }

  for (State a = 0; a < s; ++a) {
    for (State b = 0; b < s; ++b) {
      const Transition t = protocol.apply(a, b);
      if (t.initiator >= s || t.responder >= s) {
        std::ostringstream os;
        os << "apply(" << protocol.state_name(a) << ", "
           << protocol.state_name(b) << ") -> ("
           << safe_state_name(protocol, t.initiator) << ", "
           << safe_state_name(protocol, t.responder)
           << ") leaves the state space [0, " << s << ")";
        report.error("well_formed.transition_range", os.str());
      }
    }
  }
}

}  // namespace popbean::verify
