// Exhaustive small-population exactness search.
//
// The linear-invariant and well-formedness checks are per-transition; this
// check is global: it walks the *entire configuration graph* of the protocol
// for every population size n ≤ max_n and every non-tie input split, and
// verifies that no reachable configuration has all agents outputting the
// initial minority. That is the finite instantiation of the paper's
// exactness claim (Lemma A.1 / Theorem 4.1: AVC converges to the initial
// majority with probability 1): if some wrong-output configuration were
// reachable, a finite execution would exhibit it, and conversely the BFS
// visits every configuration any execution can reach. "All agents output
// wrong" in particular covers every *stable* wrong configuration, so its
// absence rules out wrong convergence outright.
//
// The configuration graph has C(n+s−1, s−1) nodes, so this is only feasible
// for small n — which is the point: together with the conservation proof
// (all n at once) and trajectory spot-checks (large n, sampled), the three
// layers cover each other's blind spots.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "analysis/exact_markov.hpp"
#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "verify/finding.hpp"

namespace popbean::verify {

// C(n+s−1, s−1), clamped: returns cap+1 when the count exceeds cap or the
// intermediate product would leave 64 bits. The multiplication must be
// overflow-checked *before* the cap comparison — for large n the product
// can wrap around to a small value and sail under the cap, which would let
// the caller attempt an enumeration of astronomically many configurations.
inline std::uint64_t composition_count(std::uint64_t n, std::uint64_t s,
                                       std::uint64_t cap) {
  std::uint64_t result = 1;
  // C(n+s−1, s−1) = Π_{i=1}^{s−1} (n+i)/i, exact at every step.
  for (std::uint64_t i = 1; i < s; ++i) {
    std::uint64_t scaled = 0;
    if (__builtin_add_overflow(n, i, &scaled) ||
        __builtin_mul_overflow(result, scaled, &scaled)) {
      return cap + 1;
    }
    result = scaled / i;
    if (result > cap) return cap + 1;
  }
  return result;
}

struct SmallNOptions {
  std::uint64_t max_n = 8;          // search n = 2 … max_n
  std::uint64_t max_configs = 500'000;  // per-n configuration budget
};

// Renders a configuration as "{name: count, …}" over occupied states.
template <ProtocolLike P>
std::string render_config(const P& protocol, const Counts& config) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (State q = 0; q < config.size(); ++q) {
    if (config[q] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << protocol.state_name(q) << ": " << config[q];
  }
  os << "}";
  return os.str();
}

// For every n ≤ options.max_n and every split count_a ≠ n/2, BFS the
// configuration graph from the majority instance and report an error
// (check "small_n.wrong_output_reachable") for each reachable configuration
// whose agents unanimously output the minority opinion. Adds a summary note
// with the sizes searched. Only meaningful for protocols that claim *exact*
// majority (AVC, four-state); approximate protocols reach wrong unanimity
// by design.
template <ProtocolLike P>
void check_small_n_exact(const P& protocol, Report& report,
                         const SmallNOptions& options = {}) {
  const std::size_t s = protocol.num_states();
  std::uint64_t searched_up_to = 0;
  std::uint64_t configs_walked = 0;

  for (std::uint64_t n = 2; n <= options.max_n; ++n) {
    if (composition_count(n, s, options.max_configs) > options.max_configs) {
      std::ostringstream note;
      note << "configuration space exceeds budget at n = " << n
           << "; searched n <= " << searched_up_to;
      report.note("small_n.budget", note.str());
      break;
    }
    const ExactChain chain(protocol, n, options.max_configs);
    configs_walked += chain.num_configs();
    searched_up_to = n;

    for (std::uint64_t count_a = 0; count_a <= n; ++count_a) {
      if (2 * count_a == n) continue;  // ties are out of scope (§2)
      const Output majority = 2 * count_a > n ? 1 : 0;
      const Output wrong = 1 - majority;
      const Counts initial = majority_instance(protocol, n, count_a);
      const std::vector<bool> reachable = chain.reachable_from(initial);
      for (std::size_t idx = 0; idx < reachable.size(); ++idx) {
        if (!reachable[idx]) continue;
        const Counts& config = chain.config(idx);
        if (output_agents(protocol, config, wrong) != n) continue;
        std::ostringstream os;
        os << "n = " << n << ", split " << count_a << "A/" << (n - count_a)
           << "B: wrong-output configuration "
           << render_config(protocol, config)
           << " is reachable (all agents output " << wrong
           << ", initial majority was " << majority << ")";
        report.error("small_n.wrong_output_reachable", os.str());
      }
    }
  }

  if (searched_up_to >= 2) {
    std::ostringstream os;
    os << "exhausted all majority instances for n = 2 … " << searched_up_to
       << " (" << configs_walked << " configurations per-n, all splits)";
    report.note("small_n.searched", os.str());
  }
}

}  // namespace popbean::verify
