// Exact integer lattice arithmetic behind invariant inference: kernel of an
// integer matrix by unimodular column reduction, Hermite normal form of the
// resulting basis, and lattice membership. All operations are overflow-
// checked; entry growth during reduction is bounded in practice (inputs are
// net-change vectors with entries in {-2..2}).
#include "verify/stoichiometry.hpp"

#include <cstdlib>
#include <numeric>
#include <utility>

namespace popbean::verify {

namespace {

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  if (__builtin_add_overflow(a, b, &result)) {
    throw StoichiometryOverflow("integer overflow during exact elimination");
  }
  return result;
}

std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  if (__builtin_sub_overflow(a, b, &result)) {
    throw StoichiometryOverflow("integer overflow during exact elimination");
  }
  return result;
}

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  if (__builtin_mul_overflow(a, b, &result)) {
    throw StoichiometryOverflow("integer overflow during exact elimination");
  }
  return result;
}

std::int64_t checked_neg(std::int64_t a) { return checked_sub(0, a); }

// column -= q * other, overflow-checked.
void axpy(std::vector<std::int64_t>& column,
          const std::vector<std::int64_t>& other, std::int64_t q) {
  for (std::size_t i = 0; i < column.size(); ++i) {
    column[i] = checked_sub(column[i], checked_mul(q, other[i]));
  }
}

// Floor division with a positive divisor (C++ '/' truncates toward zero).
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

// Divides the vector by the gcd of its entries and makes the first nonzero
// entry positive; the zero vector is left alone.
void make_primitive(std::vector<std::int64_t>& v) {
  std::int64_t g = 0;
  for (const std::int64_t x : v) {
    g = std::gcd(g, x < 0 ? checked_neg(x) : x);
  }
  if (g <= 1) g = 1;
  std::int64_t lead = 0;
  for (std::int64_t& x : v) {
    x /= g;
    if (lead == 0) lead = x;
  }
  if (lead < 0) {
    for (std::int64_t& x : v) x = checked_neg(x);
  }
}

// Row Hermite normal form in place: rows end up with strictly increasing
// pivot columns, positive pivots, and entries above each pivot reduced into
// [0, pivot). For a basis of a saturated lattice this is a canonical form,
// so inference output is deterministic across elimination orders.
void hermite_normalize(std::vector<std::vector<std::int64_t>>& basis) {
  if (basis.empty()) return;
  const std::size_t cols = basis[0].size();
  std::size_t next_row = 0;
  for (std::size_t col = 0; col < cols && next_row < basis.size(); ++col) {
    // Euclidean-reduce column `col` across rows next_row..end until at most
    // one of them is nonzero there.
    while (true) {
      std::size_t best = basis.size();
      for (std::size_t r = next_row; r < basis.size(); ++r) {
        if (basis[r][col] == 0) continue;
        if (best == basis.size() ||
            std::abs(basis[r][col]) < std::abs(basis[best][col])) {
          best = r;
        }
      }
      if (best == basis.size()) break;  // column is zero below next_row
      bool reduced_any = false;
      for (std::size_t r = next_row; r < basis.size(); ++r) {
        if (r == best || basis[r][col] == 0) continue;
        const std::int64_t q = basis[r][col] / basis[best][col];
        axpy(basis[r], basis[best], q);
        reduced_any = true;
      }
      if (!reduced_any) {  // unique nonzero: promote it to the pivot row
        std::swap(basis[next_row], basis[best]);
        if (basis[next_row][col] < 0) {
          for (std::int64_t& x : basis[next_row]) x = checked_neg(x);
        }
        const std::int64_t pivot = basis[next_row][col];
        for (std::size_t r = 0; r < next_row; ++r) {
          const std::int64_t q = floor_div(basis[r][col], pivot);
          if (q != 0) axpy(basis[r], basis[next_row], q);
        }
        ++next_row;
        break;
      }
    }
  }
}

}  // namespace

std::vector<std::vector<std::int64_t>> conserved_basis(
    const Stoichiometry& stoichiometry) {
  const std::size_t s = stoichiometry.num_states;
  // Columns of a unimodular transform U, initially the identity; every
  // reduction step is an integer column operation, so span(U) = ℤ^s
  // throughout, and the still-active columns after all rows are processed
  // form a basis of the kernel lattice.
  std::vector<std::vector<std::int64_t>> columns(s);
  for (std::size_t j = 0; j < s; ++j) {
    columns[j].assign(s, 0);
    columns[j][j] = 1;
  }
  std::vector<std::size_t> active(s);
  for (std::size_t j = 0; j < s; ++j) active[j] = j;

  for (const std::vector<std::int64_t>& row : stoichiometry.rows) {
    // t[k] = row · columns[active[k]], maintained alongside the column ops.
    std::vector<std::int64_t> t(active.size(), 0);
    for (std::size_t k = 0; k < active.size(); ++k) {
      std::int64_t dot = 0;
      for (std::size_t i = 0; i < s; ++i) {
        dot = checked_add(dot, checked_mul(row[i], columns[active[k]][i]));
      }
      t[k] = dot;
    }
    // Euclidean-reduce until at most one active column hits this row.
    while (true) {
      std::size_t best = active.size();
      std::size_t nonzero = 0;
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (t[k] == 0) continue;
        ++nonzero;
        if (best == active.size() || std::abs(t[k]) < std::abs(t[best])) {
          best = k;
        }
      }
      if (nonzero <= 1) {
        if (nonzero == 1) {  // pivot column: leaves the kernel candidates
          active.erase(active.begin() +
                       static_cast<std::ptrdiff_t>(best));
        }
        break;
      }
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (k == best || t[k] == 0) continue;
        const std::int64_t q = t[k] / t[best];
        axpy(columns[active[k]], columns[active[best]], q);
        t[k] = checked_sub(t[k], checked_mul(q, t[best]));
      }
    }
  }

  std::vector<std::vector<std::int64_t>> basis;
  basis.reserve(active.size());
  for (const std::size_t j : active) {
    basis.push_back(std::move(columns[j]));
    make_primitive(basis.back());
  }
  hermite_normalize(basis);
  return basis;
}

bool lattice_member(const std::vector<std::vector<std::int64_t>>& hnf_basis,
                    std::vector<std::int64_t> v) {
  for (const std::vector<std::int64_t>& row : hnf_basis) {
    // Pivot column of this HNF row: its first nonzero entry.
    std::size_t pivot_col = row.size();
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] != 0) {
        pivot_col = i;
        break;
      }
    }
    if (pivot_col == row.size()) continue;
    if (v.size() != row.size()) return false;
    if (v[pivot_col] % row[pivot_col] != 0) return false;
    const std::int64_t q = v[pivot_col] / row[pivot_col];
    if (q != 0) axpy(v, row, q);
  }
  for (const std::int64_t x : v) {
    if (x != 0) return false;
  }
  return true;
}

bool implied_by(const std::vector<LinearInvariant>& basis,
                const LinearInvariant& invariant) {
  std::vector<std::vector<std::int64_t>> rows;
  rows.reserve(basis.size());
  for (const LinearInvariant& b : basis) {
    if (b.num_states() != invariant.num_states()) return false;
    std::vector<std::int64_t> weights(b.num_states());
    for (State q = 0; q < b.num_states(); ++q) weights[q] = b.weight(q);
    rows.push_back(std::move(weights));
  }
  hermite_normalize(rows);
  std::vector<std::int64_t> v(invariant.num_states());
  for (State q = 0; q < invariant.num_states(); ++q) {
    v[q] = invariant.weight(q);
  }
  return lattice_member(rows, std::move(v));
}

}  // namespace popbean::verify
