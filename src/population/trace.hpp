// Trajectory tracing: sampled time series of observables along a run.
//
// The AVC analysis (§4) is phase-structured: extremal weights halve every
// O(log n) parallel time (Claim A.2), no node hits weight 0 early
// (Claim A.3), then a four-state-like endgame converts the stragglers
// (Claim A.4). TraceRecorder lets benches and examples watch exactly those
// quantities along a simulated run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "population/configuration.hpp"
#include "population/run.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean {

// A named scalar observable computed from a configuration.
struct Observable {
  std::string name;
  std::function<double(const Counts&)> eval;
};

// One sampled row: parallel time plus the observables' values.
struct TracePoint {
  double parallel_time = 0.0;
  std::uint64_t interactions = 0;
  std::vector<double> values;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::vector<Observable> observables)
      : observables_(std::move(observables)) {
    POPBEAN_CHECK(!observables_.empty());
  }

  const std::vector<Observable>& observables() const noexcept {
    return observables_;
  }
  const std::vector<TracePoint>& points() const noexcept { return points_; }

  void sample(std::uint64_t interactions, std::uint64_t num_agents,
              const Counts& counts) {
    TracePoint point;
    point.interactions = interactions;
    point.parallel_time =
        static_cast<double>(interactions) / static_cast<double>(num_agents);
    point.values.reserve(observables_.size());
    for (const Observable& obs : observables_) {
      point.values.push_back(obs.eval(counts));
    }
    points_.push_back(std::move(point));
  }

  // Drives `engine` until convergence or the interaction budget, sampling
  // every `stride` interactions (plus the initial and final configurations).
  template <EngineLike E>
  RunResult record(E& engine, Xoshiro256ss& rng, std::uint64_t stride,
                   std::uint64_t max_interactions) {
    POPBEAN_CHECK(stride > 0);
    sample(engine.steps(), engine.num_agents(), engine.counts());
    std::uint64_t next_sample = engine.steps() + stride;
    RunResult result;
    while (!engine.all_same_output() && engine.steps() < max_interactions) {
      const std::uint64_t before = engine.steps();
      engine.step(rng);
      if (engine.steps() == before) break;  // absorbing
      if (engine.steps() >= next_sample) {
        sample(engine.steps(), engine.num_agents(), engine.counts());
        next_sample = engine.steps() + stride;
      }
    }
    sample(engine.steps(), engine.num_agents(), engine.counts());
    result.status = engine.all_same_output() ? RunStatus::kConverged
                                             : RunStatus::kStepLimit;
    result.decided = engine.dominant_output();
    result.interactions = engine.steps();
    result.parallel_time = engine.parallel_time();
    return result;
  }

 private:
  std::vector<Observable> observables_;
  std::vector<TracePoint> points_;
};

}  // namespace popbean
