// Human-readable dumps of protocol transition structure: a text table of
// productive reactions and a Graphviz DOT rendering of the reaction graph.
// Debugging aids — the paper's Figure 2 is exactly such a rendering of AVC.
#pragma once

#include <sstream>
#include <string>

#include "population/protocol.hpp"

namespace popbean {

// One line per productive ordered reaction:
//   "a + b -> a' + b'"
template <ProtocolLike P>
std::string describe_reactions(const P& protocol) {
  std::ostringstream os;
  for (State a = 0; a < protocol.num_states(); ++a) {
    for (State b = 0; b < protocol.num_states(); ++b) {
      const Transition t = protocol.apply(a, b);
      if (is_null(t, a, b)) continue;
      os << protocol.state_name(a) << " + " << protocol.state_name(b)
         << " -> " << protocol.state_name(t.initiator) << " + "
         << protocol.state_name(t.responder) << "\n";
    }
  }
  return os.str();
}

// Number of productive ordered state pairs.
template <ProtocolLike P>
std::size_t count_reactions(const P& protocol) {
  std::size_t count = 0;
  for (State a = 0; a < protocol.num_states(); ++a) {
    for (State b = 0; b < protocol.num_states(); ++b) {
      if (!is_null(protocol.apply(a, b), a, b)) ++count;
    }
  }
  return count;
}

// Graphviz digraph: states as nodes (shaded by output), one edge per
// productive reaction labelled with the partner and the resulting state.
template <ProtocolLike P>
std::string to_dot(const P& protocol, const std::string& graph_name = "protocol") {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=LR;\n";
  for (State q = 0; q < protocol.num_states(); ++q) {
    os << "  q" << q << " [label=\"" << protocol.state_name(q)
       << "\", style=filled, fillcolor=\""
       << (protocol.output(q) == 1 ? "#cfe8cf" : "#e8cfcf") << "\"];\n";
  }
  for (State a = 0; a < protocol.num_states(); ++a) {
    for (State b = 0; b < protocol.num_states(); ++b) {
      const Transition t = protocol.apply(a, b);
      if (is_null(t, a, b)) continue;
      if (t.initiator != a) {
        os << "  q" << a << " -> q" << t.initiator << " [label=\"meets "
           << protocol.state_name(b) << "\"];\n";
      }
      if (t.responder != b) {
        os << "  q" << b << " -> q" << t.responder << " [label=\"met by "
           << protocol.state_name(a) << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace popbean
