// Configurations of a population: how many agents occupy each state.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

// A configuration c : V → Q represented by per-state counts (the engines on
// the complete graph never need agent identities).
using Counts = std::vector<std::uint64_t>;

inline std::uint64_t population_size(const Counts& counts) {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

// Builds the standard majority-instance configuration: count_a agents start
// in the protocol's A-input state, n - count_a in the B-input state.
template <ProtocolLike P>
Counts majority_instance(const P& protocol, std::uint64_t n,
                         std::uint64_t count_a) {
  POPBEAN_CHECK(count_a <= n);
  POPBEAN_CHECK(n >= 2);
  Counts counts(protocol.num_states(), 0);
  counts[protocol.initial_state(Opinion::A)] += count_a;
  counts[protocol.initial_state(Opinion::B)] += n - count_a;
  return counts;
}

// Builds a majority instance from an advantage margin: the majority opinion
// holds ceil(n/2 + margin/2) agents, i.e. it leads by `margin` agents
// (margin and n must have equal parity so the split is exact).
template <ProtocolLike P>
Counts majority_instance_with_margin(const P& protocol, std::uint64_t n,
                                     std::uint64_t margin,
                                     Opinion majority = Opinion::A) {
  POPBEAN_CHECK(margin >= 1 && margin <= n);
  POPBEAN_CHECK_MSG((n - margin) % 2 == 0,
                    "margin must have the same parity as n");
  const std::uint64_t larger = (n + margin) / 2;
  return majority_instance(protocol, n,
                           majority == Opinion::A ? larger : n - larger);
}

// Number of agents whose state maps to the given output.
template <ProtocolLike P>
std::uint64_t output_agents(const P& protocol, const Counts& counts,
                            Output output) {
  std::uint64_t total = 0;
  for (State q = 0; q < counts.size(); ++q) {
    if (protocol.output(q) == output) total += counts[q];
  }
  return total;
}

}  // namespace popbean
