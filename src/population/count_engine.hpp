// Count-based simulation engine for the complete interaction graph.
//
// On a clique, agents are exchangeable, so the configuration is fully
// described by per-state counts. One interaction samples the initiator state
// with probability c_i / n and the responder state from the remaining n − 1
// agents, via a Fenwick tree — O(log s) per interaction. This is the engine
// of choice when the state count s is large (the paper's Figure 4 uses
// s up to 16340 and the "n-state AVC" of Figure 3 uses s ≈ n, where an
// s × s reaction table would not fit in memory).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

#include "obs/probe.hpp"
#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"

namespace popbean {

template <ProtocolLike P>
class CountEngine {
 public:
  CountEngine(P protocol, const Counts& counts)
      : protocol_(std::move(protocol)), counts_(counts), tree_(counts) {
    POPBEAN_CHECK(counts_.size() == protocol_.num_states());
    num_agents_ = population_size(counts_);
    POPBEAN_CHECK(num_agents_ >= 2);
    for (State q = 0; q < counts_.size(); ++q) {
      out_count_[index(protocol_.output(q))] += counts_[q];
    }
  }

  const P& protocol() const noexcept { return protocol_; }
  std::uint64_t num_agents() const noexcept { return num_agents_; }
  std::uint64_t steps() const noexcept { return steps_; }
  double parallel_time() const noexcept {
    return static_cast<double>(steps_) / static_cast<double>(num_agents_);
  }

  const Counts& counts() const noexcept { return counts_; }

  std::uint64_t output_agents(Output output) const noexcept {
    return out_count_[index(output)];
  }

  // Attaches an interaction probe (src/obs); pass nullptr to detach. The
  // probe must outlive the engine or be detached first. Recording compiles
  // out entirely when POPBEAN_OBS_ENABLED=0.
  void attach_probe(obs::EngineProbe* probe) noexcept { probe_ = probe; }

  bool all_same_output() const noexcept {
    return out_count_[0] == 0 || out_count_[1] == 0;
  }

  Output dominant_output() const noexcept {
    return out_count_[1] >= out_count_[0] ? 1 : 0;
  }

  // External-perturbation hook (src/faults/): moves one agent of state
  // `from` to state `to`, outside the protocol's transition function. Agents
  // of equal state are exchangeable here, so no sampling is needed; the rng
  // parameter keeps the signature uniform across engines.
  void force_move(State from, State to, Xoshiro256ss&) {
    POPBEAN_CHECK(from < protocol_.num_states());
    POPBEAN_CHECK(to < protocol_.num_states());
    if (from == to) return;
    POPBEAN_CHECK_MSG(counts_[from] > 0,
                      "force_move: no agent holds `from` state");
    adjust(from, -1);
    adjust(to, +1);
    move_output(from, to);
  }

  // --- snapshot hooks (src/recovery) ---------------------------------------
  // Serializes counts and step count; the Fenwick tree and output tallies
  // are derived state, rebuilt (and cross-checked) on load.
  static constexpr std::string_view kSnapshotKind = "engine/count";

  void save_state(BinaryWriter& out) const {
    out.u64(steps_);
    out.vec_u64(counts_);
  }

  void load_state(BinaryReader& in) {
    const std::uint64_t steps = in.u64();
    Counts counts = in.vec_u64();
    POPBEAN_CHECK_MSG(counts.size() == protocol_.num_states(),
                      "snapshot state count does not match the protocol");
    POPBEAN_CHECK_MSG(population_size(counts) == num_agents_,
                      "snapshot population size does not match this engine");
    counts_ = std::move(counts);
    tree_ = FenwickTree(counts_);
    steps_ = steps;
    out_count_[0] = 0;
    out_count_[1] = 0;
    for (State q = 0; q < counts_.size(); ++q) {
      out_count_[index(protocol_.output(q))] += counts_[q];
    }
  }

  // Executes one interaction on a uniformly random ordered pair of distinct
  // agents.
  void step(Xoshiro256ss& rng) {
    const auto a = static_cast<State>(tree_.find_by_prefix(rng.below(num_agents_)));
    // Sample the responder from the other n − 1 agents: exclude one agent of
    // state a, draw, then restore.
    adjust(a, -1);
    const auto b =
        static_cast<State>(tree_.find_by_prefix(rng.below(num_agents_ - 1)));
    adjust(a, +1);

    const Transition t = protocol_.apply(a, b);
    const bool null = is_null(t, a, b);
    if (!null) {
      apply_reaction(a, b, t);
    }
    POPBEAN_OBS_HOOK(if (probe_ != nullptr) {
      probe_->record(null ? obs::ReactionKind::kNull
                          : obs::classify_interaction(protocol_, a, b));
    })
    ++steps_;
  }

 private:
  static constexpr std::size_t index(Output o) noexcept {
    return o == 0 ? 0 : 1;
  }

  void adjust(State q, std::int64_t delta) {
    counts_[q] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(counts_[q]) + delta);
    tree_.add(q, delta);
  }

  void apply_reaction(State a, State b, const Transition& t) {
    adjust(a, -1);
    adjust(b, -1);
    adjust(t.initiator, +1);
    adjust(t.responder, +1);
    move_output(a, t.initiator);
    move_output(b, t.responder);
  }

  void move_output(State from, State to) noexcept {
    const Output before = protocol_.output(from);
    const Output after = protocol_.output(to);
    if (before != after) {
      --out_count_[index(before)];
      ++out_count_[index(after)];
    }
  }

  P protocol_;
  Counts counts_;
  FenwickTree tree_;
  obs::EngineProbe* probe_ = nullptr;
  std::uint64_t num_agents_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t out_count_[2] = {0, 0};
};

}  // namespace popbean
