// Stable identity strings for protocols (DESIGN.md §7, §11).
//
// A snapshot restored into an engine built around a *different* protocol
// deserializes plausible-looking garbage: counts indexed by foreign state
// ids. The identity string is the guard: a short, deterministic summary of
// (state count, initial states, outputs, δ) that recovery snapshots embed
// and compare on restore.
//
// Identity is structural, not nominal: AvcProtocol(3, 1) and its
// TabulatedProtocol re-encoding produce the same string, because they are
// the same δ on the same dense ids — snapshots move freely between them.
// Protocols may override the default by providing an `identity()` member
// (zoo runtimes prefix their registry name, and their materialized views
// copy the string, so the programmatic/materialized pair stays
// interchangeable too).
//
// For large state spaces the full s² table is too expensive to hash on
// every snapshot, so the fingerprint degrades to a fixed-size
// deterministic sample of δ entries — still a function of the protocol
// alone, still stable across runs and builds.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

#include "population/protocol.hpp"
#include "util/binary_io.hpp"

namespace popbean {

namespace detail {

inline std::uint64_t identity_mix(std::uint64_t h, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  return fnv1a64(std::string_view(bytes, sizeof bytes), h);
}

}  // namespace detail

// "s=<s>/fp=<16 hex digits>" — the structural part of an identity string.
template <ProtocolLike P>
std::string protocol_fingerprint(const P& protocol) {
  // Full-table hashing up to this many states; beyond it, a fixed-size
  // deterministic sample (splitmix64 sequence over pair indices).
  constexpr std::size_t kFullHashStates = 512;
  constexpr std::uint64_t kSamplePairs = std::uint64_t{1} << 16;

  const auto s = static_cast<std::uint64_t>(protocol.num_states());
  std::uint64_t h = fnv1a64("popbean/protocol-identity");
  h = detail::identity_mix(h, s);
  h = detail::identity_mix(h, protocol.initial_state(Opinion::B));
  h = detail::identity_mix(h, protocol.initial_state(Opinion::A));
  for (State q = 0; q < s; ++q) {
    h = detail::identity_mix(
        h, static_cast<std::uint64_t>(
               static_cast<std::int64_t>(protocol.output(q))));
  }

  const auto mix_pair = [&](State a, State b) {
    const Transition t = protocol.apply(a, b);
    h = detail::identity_mix(h, (static_cast<std::uint64_t>(a) << 32) | b);
    h = detail::identity_mix(
        h, (static_cast<std::uint64_t>(t.initiator) << 32) | t.responder);
  };
  if (s <= kFullHashStates) {
    for (State a = 0; a < s; ++a) {
      for (State b = 0; b < s; ++b) mix_pair(a, b);
    }
  } else {
    std::uint64_t x = 0x9E3779B97F4A7C15ull;  // fixed seed: identical sample
    for (std::uint64_t i = 0; i < kSamplePairs; ++i) {  // for identical δ
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      z ^= z >> 31;
      mix_pair(static_cast<State>((z >> 32) % s),
               static_cast<State>((z & 0xffffffffull) % s));
    }
  }

  std::ostringstream os;
  os << "s=" << s << "/fp=" << std::hex << std::setw(16) << std::setfill('0')
     << h;
  return os.str();
}

// The identity string: a protocol's own `identity()` if it provides one,
// otherwise the structural fingerprint under the generic "delta" tag.
template <ProtocolLike P>
std::string protocol_identity(const P& protocol) {
  if constexpr (requires {
                  { protocol.identity() } -> std::convertible_to<std::string>;
                }) {
    return protocol.identity();
  } else {
    return "delta/" + protocol_fingerprint(protocol);
  }
}

}  // namespace popbean
