// Driving an engine to convergence and reporting the outcome.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <optional>

#include "population/protocol.hpp"
#include "util/rng.hpp"

namespace popbean {

// Common surface of the simulation engines (agent, count, skip).
template <typename E>
concept EngineLike = requires(E engine, Xoshiro256ss& rng) {
  { engine.num_agents() } -> std::convertible_to<std::uint64_t>;
  { engine.steps() } -> std::convertible_to<std::uint64_t>;
  { engine.parallel_time() } -> std::convertible_to<double>;
  { engine.all_same_output() } -> std::convertible_to<bool>;
  { engine.dominant_output() } -> std::convertible_to<Output>;
  engine.step(rng);
};

enum class RunStatus {
  kConverged,   // all agents map to the same output
  kStepLimit,   // interaction budget exhausted first
  kAbsorbing,   // no productive interaction possible, outputs still mixed
};

struct RunResult {
  RunStatus status = RunStatus::kStepLimit;
  Output decided = 0;           // meaningful when converged
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;   // interactions / n

  bool converged() const noexcept { return status == RunStatus::kConverged; }
};

// Steps the engine until every agent maps to the same output, the
// interaction budget runs out, or (skip engine only) the configuration is
// absorbing with mixed outputs. "All agents same output" is an absorbing
// predicate for every protocol in this library (paper Lemma A.1 for AVC;
// convergence_test.cpp checks the baselines), so stopping there matches the
// paper's convergence-time metric.
template <EngineLike E>
RunResult run_to_convergence(
    E& engine, Xoshiro256ss& rng,
    std::uint64_t max_interactions = std::numeric_limits<std::uint64_t>::max()) {
  RunResult result;
  while (!engine.all_same_output()) {
    if (engine.steps() >= max_interactions) {
      result.status = RunStatus::kStepLimit;
      result.interactions = engine.steps();
      result.parallel_time = engine.parallel_time();
      return result;
    }
    const std::uint64_t before = engine.steps();
    engine.step(rng);
    if (engine.steps() == before) {  // skip engine hit an absorbing config
      result.status = RunStatus::kAbsorbing;
      result.interactions = engine.steps();
      result.parallel_time = engine.parallel_time();
      return result;
    }
  }
  result.status = RunStatus::kConverged;
  result.decided = engine.dominant_output();
  result.interactions = engine.steps();
  result.parallel_time = engine.parallel_time();
  return result;
}

// run_to_convergence with cooperative cancellation: `should_stop` is polled
// every `poll_interval` interactions (and before the first), and a true
// return abandons the run with std::nullopt — the engine is left mid-run and
// the caller decides whether to retry, checkpoint, or drop it. A completed
// run is bit-identical to run_to_convergence with the same inputs: polling
// touches no randomness. This is what gives the crash-tolerant sweep its
// per-replication timeouts and SIGINT draining without perturbing results.
template <EngineLike E, typename StopFn>
std::optional<RunResult> run_to_convergence_interruptible(
    E& engine, Xoshiro256ss& rng, std::uint64_t max_interactions,
    StopFn&& should_stop, std::uint64_t poll_interval = 1024) {
  if (poll_interval == 0) poll_interval = 1;
  RunResult result;
  std::uint64_t until_poll = 0;
  while (!engine.all_same_output()) {
    if (until_poll == 0) {
      if (should_stop()) return std::nullopt;
      until_poll = poll_interval;
    }
    --until_poll;
    if (engine.steps() >= max_interactions) {
      result.status = RunStatus::kStepLimit;
      result.interactions = engine.steps();
      result.parallel_time = engine.parallel_time();
      return result;
    }
    const std::uint64_t before = engine.steps();
    engine.step(rng);
    if (engine.steps() == before) {  // skip engine hit an absorbing config
      result.status = RunStatus::kAbsorbing;
      result.interactions = engine.steps();
      result.parallel_time = engine.parallel_time();
      return result;
    }
  }
  result.status = RunStatus::kConverged;
  result.decided = engine.dominant_output();
  result.interactions = engine.steps();
  result.parallel_time = engine.parallel_time();
  return result;
}

}  // namespace popbean
