// Continuous-time (Poisson clock) view of the interaction sequence.
//
// In the continuous-time model (paper §1; [PVV09, DV12]) each agent
// activates at the instants of a rate-1 Poisson process and interacts with a
// random partner, so the population performs interactions at total rate n
// and "real time" until convergence corresponds to parallel time in the
// discrete model. Because the embedded jump chain is exactly the discrete
// model, we simulate discretely and sample the elapsed continuous time as a
// sum of Exponential(n) holding times.
#pragma once

#include <cstdint>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean {

class PoissonClock {
 public:
  explicit PoissonClock(std::uint64_t num_agents)
      : rate_(static_cast<double>(num_agents)) {
    POPBEAN_CHECK(num_agents >= 2);
  }

  // Advances the clock past one interaction and returns the holding time.
  double advance(Xoshiro256ss& rng) {
    const double dt = rng.exponential(rate_);
    now_ += dt;
    return dt;
  }

  // Advances past `interactions` interactions at once (sum of exponentials —
  // sampled exactly as a Gamma(k, rate) via k draws for moderate k, or the
  // normal approximation is avoided entirely by summing; here we sum).
  double advance_many(Xoshiro256ss& rng, std::uint64_t interactions) {
    double total = 0.0;
    for (std::uint64_t k = 0; k < interactions; ++k) total += advance(rng);
    return total;
  }

  double now() const noexcept { return now_; }
  double rate() const noexcept { return rate_; }

 private:
  double rate_;
  double now_ = 0.0;
};

}  // namespace popbean
