// Agent-array simulation engine.
//
// Keeps the explicit state of each agent; one interaction costs O(1). This is
// the reference engine: it is the only one that supports arbitrary
// interaction graphs, and the accelerated engines are validated against it.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph_concept.hpp"
#include "graph/interaction_graph.hpp"
#include "obs/probe.hpp"
#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean {

// G may be the uniform-edge InteractionGraph (default) or any GraphLike
// type, e.g. the rate-weighted WeightedInteractionGraph of [DV12]'s
// general-rates model.
template <ProtocolLike P, GraphLike G = InteractionGraph>
class AgentEngine {
 public:
  // Complete-graph engine; agents are created per `counts` (state order).
  AgentEngine(P protocol, const Counts& counts)
    requires std::same_as<G, InteractionGraph>
      : AgentEngine(std::move(protocol), counts,
                    InteractionGraph::complete(
                        static_cast<NodeId>(checked_size(counts)))) {}

  // Engine on an explicit interaction graph. Initial states are assigned to
  // nodes in state order; call shuffle_placement() for a random assignment
  // (placement matters on non-complete graphs).
  AgentEngine(P protocol, const Counts& counts, G graph)
      : protocol_(std::move(protocol)), graph_(std::move(graph)) {
    POPBEAN_CHECK(counts.size() == protocol_.num_states());
    const std::uint64_t n = population_size(counts);
    POPBEAN_CHECK(n >= 2);
    POPBEAN_CHECK(graph_.num_nodes() == n);
    agents_.reserve(n);
    for (State q = 0; q < counts.size(); ++q) {
      for (std::uint64_t k = 0; k < counts[q]; ++k) agents_.push_back(q);
      out_count_[index(protocol_.output(q))] += counts[q];
    }
  }

  // Fisher–Yates shuffle of the agent-to-node assignment.
  void shuffle_placement(Xoshiro256ss& rng) {
    for (std::size_t i = agents_.size(); i > 1; --i) {
      std::swap(agents_[i - 1], agents_[rng.below(i)]);
    }
  }

  const P& protocol() const noexcept { return protocol_; }
  const G& graph() const noexcept { return graph_; }
  std::uint64_t num_agents() const noexcept { return agents_.size(); }
  std::uint64_t steps() const noexcept { return steps_; }
  double parallel_time() const noexcept {
    return static_cast<double>(steps_) / static_cast<double>(num_agents());
  }

  State state_of(NodeId node) const {
    POPBEAN_CHECK(node < agents_.size());
    return agents_[node];
  }

  Counts counts() const {
    Counts c(protocol_.num_states(), 0);
    for (State q : agents_) ++c[q];
    return c;
  }

  std::uint64_t output_agents(Output output) const noexcept {
    return out_count_[index(output)];
  }

  // Attaches an interaction probe (src/obs); pass nullptr to detach. The
  // probe must outlive the engine or be detached first. Recording compiles
  // out entirely when POPBEAN_OBS_ENABLED=0.
  void attach_probe(obs::EngineProbe* probe) noexcept { probe_ = probe; }

  bool all_same_output() const noexcept {
    return out_count_[0] == 0 || out_count_[1] == 0;
  }

  // The output held by the larger camp (the unanimous one when converged).
  Output dominant_output() const noexcept {
    return out_count_[1] >= out_count_[0] ? 1 : 0;
  }

  // External-perturbation hook (src/faults/): moves one uniformly random
  // agent of state `from` to state `to`, outside the protocol's transition
  // function. Does not count as an interaction. O(n) — fault injection is
  // rare relative to stepping.
  void force_move(State from, State to, Xoshiro256ss& rng) {
    POPBEAN_CHECK(from < protocol_.num_states());
    POPBEAN_CHECK(to < protocol_.num_states());
    if (from == to) return;
    std::uint64_t holders = 0;
    for (State q : agents_) holders += (q == from) ? 1 : 0;
    POPBEAN_CHECK_MSG(holders > 0, "force_move: no agent holds `from` state");
    std::uint64_t target = rng.below(holders);
    for (State& q : agents_) {
      if (q != from) continue;
      if (target == 0) {
        q = to;
        move_output(from, to);
        return;
      }
      --target;
    }
  }

  // --- snapshot hooks (src/recovery) ---------------------------------------
  // Serializes the mutable run state (agent array, step count, output
  // bookkeeping). The protocol and graph are construction inputs, not saved:
  // restore into an engine built with identical arguments.
  static constexpr std::string_view kSnapshotKind = "engine/agent";

  void save_state(BinaryWriter& out) const {
    out.u64(steps_);
    out.u64(agents_.size());
    for (const State q : agents_) out.u32(q);
  }

  void load_state(BinaryReader& in) {
    const std::uint64_t steps = in.u64();
    const std::uint64_t n = in.u64();
    POPBEAN_CHECK_MSG(n == agents_.size(),
                      "snapshot population size does not match this engine");
    std::vector<State> agents(agents_.size());
    std::uint64_t out_count[2] = {0, 0};
    for (State& q : agents) {
      q = in.u32();
      POPBEAN_CHECK_MSG(q < protocol_.num_states(),
                        "snapshot agent state out of range");
      ++out_count[index(protocol_.output(q))];
    }
    agents_ = std::move(agents);
    steps_ = steps;
    out_count_[0] = out_count[0];
    out_count_[1] = out_count[1];
  }

  // Executes one interaction: draws a uniformly random directed edge and
  // applies the transition function to (initiator, responder).
  void step(Xoshiro256ss& rng) {
    const auto [u, v] = graph_.sample_directed_edge(rng);
    const State a = agents_[u];
    const State b = agents_[v];
    const Transition t = protocol_.apply(a, b);
    const bool null = is_null(t, a, b);
    if (!null) {
      move_output(a, t.initiator);
      move_output(b, t.responder);
      agents_[u] = t.initiator;
      agents_[v] = t.responder;
    }
    POPBEAN_OBS_HOOK(if (probe_ != nullptr) {
      probe_->record(null ? obs::ReactionKind::kNull
                          : obs::classify_interaction(protocol_, a, b));
    })
    ++steps_;
  }

 private:
  static std::uint64_t checked_size(const Counts& counts) {
    const std::uint64_t n = population_size(counts);
    POPBEAN_CHECK(n >= 2);
    POPBEAN_CHECK_MSG(n <= 0xffffffffULL,
                      "AgentEngine node ids are 32-bit; population too large");
    return n;
  }

  static constexpr std::size_t index(Output o) noexcept {
    return o == 0 ? 0 : 1;
  }

  void move_output(State from, State to) noexcept {
    const Output before = protocol_.output(from);
    const Output after = protocol_.output(to);
    if (before != after) {
      --out_count_[index(before)];
      ++out_count_[index(after)];
    }
  }

  P protocol_;
  G graph_;
  std::vector<State> agents_;
  obs::EngineProbe* probe_ = nullptr;
  std::uint64_t steps_ = 0;
  std::uint64_t out_count_[2] = {0, 0};
};

}  // namespace popbean
