// Null-step-skipping engine (jump-chain simulation) for the complete graph.
//
// For protocols with few states, most late-run interactions are null: they
// pick a pair whose transition changes nothing. The paper's Figure 3 runs
// the four-state protocol at ε = 1/n with n = 10^5, which needs ~10^11 raw
// interactions but only ~10^6 *productive* ones. This engine samples the
// embedded chain exactly:
//
//   1. With W = Σ over reactive ordered state pairs (i, j) of c_i·(c_j − [i=j])
//      and T = n(n−1) total ordered agent pairs, the number of null
//      interactions before the next productive one is Geometric(W / T).
//   2. The productive pair is then (i, j) with probability ∝ its weight.
//
// Both facts follow from interactions being i.i.d. uniform over ordered
// agent pairs, so the simulated distribution over (configuration trajectory,
// interaction counts) is identical to direct simulation — verified by
// distribution-equivalence tests against AgentEngine/CountEngine.
//
// Cost: O(s) per productive interaction (row scan) and O(s²) memory for the
// tabulated transition function; intended for s up to a few hundred.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/probe.hpp"
#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean {

template <ProtocolLike P>
class SkipEngine {
 public:
  // Largest supported state count; the δ table is s² entries.
  static constexpr std::size_t kMaxStates = 1024;

  SkipEngine(P protocol, const Counts& counts)
      : protocol_(std::move(protocol)),
        num_states_(protocol_.num_states()),
        counts_(counts) {
    POPBEAN_CHECK(counts_.size() == num_states_);
    POPBEAN_CHECK_MSG(num_states_ <= kMaxStates,
                      "SkipEngine tabulates s^2 transitions; use CountEngine "
                      "for protocols with many states");
    num_agents_ = population_size(counts_);
    POPBEAN_CHECK(num_agents_ >= 2);

    table_.resize(num_states_ * num_states_);
    reactive_.resize(num_states_ * num_states_);
    rows_by_responder_.resize(num_states_);
    for (State a = 0; a < num_states_; ++a) {
      for (State b = 0; b < num_states_; ++b) {
        const Transition t = protocol_.apply(a, b);
        table_[cell(a, b)] = t;
        reactive_[cell(a, b)] = !is_null(t, a, b);
        if (reactive_[cell(a, b)]) rows_by_responder_[b].push_back(a);
      }
    }

    responder_sum_.assign(num_states_, 0);
    for (State i = 0; i < num_states_; ++i) {
      for (State j = 0; j < num_states_; ++j) {
        if (reactive_[cell(i, j)]) responder_sum_[i] += counts_[j];
      }
    }
    for (State q = 0; q < num_states_; ++q) {
      out_count_[index(protocol_.output(q))] += counts_[q];
    }
  }

  const P& protocol() const noexcept { return protocol_; }
  std::uint64_t num_agents() const noexcept { return num_agents_; }
  std::uint64_t steps() const noexcept { return steps_; }
  double parallel_time() const noexcept {
    return static_cast<double>(steps_) / static_cast<double>(num_agents_);
  }
  const Counts& counts() const noexcept { return counts_; }

  std::uint64_t output_agents(Output output) const noexcept {
    return out_count_[index(output)];
  }

  bool all_same_output() const noexcept {
    return out_count_[0] == 0 || out_count_[1] == 0;
  }

  Output dominant_output() const noexcept {
    return out_count_[1] >= out_count_[0] ? 1 : 0;
  }

  // Attaches an interaction probe (src/obs); pass nullptr to detach. The
  // probe must outlive the engine or be detached first. Skipped null runs
  // are bulk-recorded, so the probe's interaction total still matches
  // steps(). Recording compiles out entirely when POPBEAN_OBS_ENABLED=0.
  void attach_probe(obs::EngineProbe* probe) noexcept {
    probe_ = probe;
    POPBEAN_OBS_HOOK(if (probe_ != nullptr && kind_table_.empty()) {
      kind_table_.resize(num_states_ * num_states_, obs::ReactionKind::kNull);
      for (State a = 0; a < num_states_; ++a) {
        for (State b = 0; b < num_states_; ++b) {
          if (reactive_[cell(a, b)]) {
            kind_table_[cell(a, b)] =
                obs::classify_interaction(protocol_, a, b);
          }
        }
      }
    })
  }

  // True once no productive interaction is possible (the configuration is
  // absorbing); step() becomes a no-op.
  bool absorbing() const noexcept { return absorbing_; }

  // Total weight of productive ordered agent pairs in the current
  // configuration (0 ⇔ absorbing).
  std::uint64_t reactive_weight() const {
    std::uint64_t total = 0;
    for (State i = 0; i < num_states_; ++i) total += row_weight(i);
    return total;
  }

  // External-perturbation hook (src/faults/): moves one agent of state
  // `from` to state `to`, outside the protocol's transition function. An
  // injected state can re-enable reactions in an absorbed configuration, so
  // the absorbing flag is cleared and re-derived on the next step().
  void force_move(State from, State to, Xoshiro256ss&) {
    POPBEAN_CHECK(from < num_states_);
    POPBEAN_CHECK(to < num_states_);
    if (from == to) return;
    POPBEAN_CHECK_MSG(counts_[from] > 0,
                      "force_move: no agent holds `from` state");
    adjust(from, -1);
    adjust(to, +1);
    move_output(from, to);
    absorbing_ = false;
  }

  // --- snapshot hooks (src/recovery) ---------------------------------------
  // Serializes counts, step count, and the absorbing flag; the δ table and
  // responder sums are derived state, rebuilt on load.
  static constexpr std::string_view kSnapshotKind = "engine/skip";

  void save_state(BinaryWriter& out) const {
    out.u64(steps_);
    out.u8(absorbing_ ? 1 : 0);
    out.vec_u64(counts_);
  }

  void load_state(BinaryReader& in) {
    const std::uint64_t steps = in.u64();
    const std::uint8_t absorbing = in.u8();
    POPBEAN_CHECK_MSG(absorbing <= 1, "snapshot absorbing flag corrupt");
    Counts counts = in.vec_u64();
    POPBEAN_CHECK_MSG(counts.size() == num_states_,
                      "snapshot state count does not match the protocol");
    POPBEAN_CHECK_MSG(population_size(counts) == num_agents_,
                      "snapshot population size does not match this engine");
    counts_ = std::move(counts);
    steps_ = steps;
    absorbing_ = absorbing != 0;
    responder_sum_.assign(num_states_, 0);
    for (State i = 0; i < num_states_; ++i) {
      for (State j = 0; j < num_states_; ++j) {
        if (reactive_[cell(i, j)]) responder_sum_[i] += counts_[j];
      }
    }
    out_count_[0] = 0;
    out_count_[1] = 0;
    for (State q = 0; q < num_states_; ++q) {
      out_count_[index(protocol_.output(q))] += counts_[q];
    }
  }

  // Advances time past the pending run of null interactions and executes the
  // next productive interaction (or marks the configuration absorbing).
  void step(Xoshiro256ss& rng) {
    if (absorbing_) return;
    const std::uint64_t weight = reactive_weight();
    if (weight == 0) {
      absorbing_ = true;
      return;
    }
    const double total_pairs = static_cast<double>(num_agents_) *
                               static_cast<double>(num_agents_ - 1);
    const double p = static_cast<double>(weight) / total_pairs;
    const std::uint64_t skipped = rng.geometric_failures(p);
    steps_ += skipped + 1;
    POPBEAN_OBS_HOOK(
        if (probe_ != nullptr) { probe_->record_nulls(skipped); })

    // Pick the productive ordered pair ∝ c_i · (c_j − [i = j]).
    std::uint64_t target = rng.below(weight);
    State i = 0;
    for (;; ++i) {
      POPBEAN_DCHECK(i < num_states_);
      const std::uint64_t w = row_weight(i);
      if (target < w) break;
      target -= w;
    }
    POPBEAN_DCHECK(counts_[i] > 0);
    target /= counts_[i];  // responder choice repeats identically per initiator
    State j = 0;
    for (;; ++j) {
      POPBEAN_DCHECK(j < num_states_);
      if (!reactive_[cell(i, j)]) continue;
      const std::uint64_t w = counts_[j] - (i == j ? 1 : 0);
      if (target < w) break;
      target -= w;
    }

    const Transition t = table_[cell(i, j)];
    adjust(i, -1);
    adjust(j, -1);
    adjust(t.initiator, +1);
    adjust(t.responder, +1);
    move_output(i, t.initiator);
    move_output(j, t.responder);
    POPBEAN_OBS_HOOK(
        if (probe_ != nullptr) { probe_->record(kind_table_[cell(i, j)]); })
  }

 private:
  static constexpr std::size_t index(Output o) noexcept {
    return o == 0 ? 0 : 1;
  }

  std::size_t cell(State a, State b) const noexcept {
    return static_cast<std::size_t>(a) * num_states_ + b;
  }

  // Weight of productive ordered pairs whose initiator has state i.
  std::uint64_t row_weight(State i) const noexcept {
    const std::uint64_t base = counts_[i] * responder_sum_[i];
    return reactive_[cell(i, i)] ? base - counts_[i] : base;
  }

  void adjust(State q, std::int64_t delta) {
    counts_[q] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(counts_[q]) + delta);
    for (State row : rows_by_responder_[q]) {
      responder_sum_[row] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(responder_sum_[row]) + delta);
    }
  }

  void move_output(State from, State to) noexcept {
    const Output before = protocol_.output(from);
    const Output after = protocol_.output(to);
    if (before != after) {
      --out_count_[index(before)];
      ++out_count_[index(after)];
    }
  }

  P protocol_;
  std::size_t num_states_;
  Counts counts_;
  std::vector<Transition> table_;
  std::vector<char> reactive_;
  obs::EngineProbe* probe_ = nullptr;
  std::vector<obs::ReactionKind> kind_table_;  // built lazily by attach_probe
  std::vector<std::vector<State>> rows_by_responder_;
  std::vector<std::uint64_t> responder_sum_;
  std::uint64_t num_agents_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t out_count_[2] = {0, 0};
  bool absorbing_ = false;
};

}  // namespace popbean
