// Core vocabulary types for population protocols (paper §2).
//
// A population protocol is a deterministic state machine replicated across n
// agents: a finite state set Q (we use dense ids 0..s-1), a transition
// function δ : Q × Q → Q × Q applied to a uniformly random ordered pair of
// distinct agents per discrete step, and an output function γ : Q → {0, 1}.
//
// Protocols are plain value types satisfying the ProtocolLike concept below;
// simulation engines are templates over the protocol type so that δ inlines
// into the interaction loop (hundreds of millions of interactions per run).
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

namespace popbean {

// Dense protocol state id in [0, num_states()).
using State = std::uint32_t;

// Output symbol. For the majority problem: 1 ⇔ "initial majority was A",
// 0 ⇔ "initial majority was B" (paper §2, The Majority Problem).
using Output = int;

// Initial opinion of an agent in a majority instance.
enum class Opinion : int { B = 0, A = 1 };

constexpr Output output_of(Opinion o) noexcept { return static_cast<Output>(o); }

// Result of applying δ to the ordered pair (initiator, responder).
struct Transition {
  State initiator;
  State responder;

  friend bool operator==(const Transition&, const Transition&) = default;
};

// True when δ leaves both participants unchanged — a "null" interaction that
// advances time but not the configuration. The skip engine batches these.
constexpr bool is_null(const Transition& t, State initiator,
                       State responder) noexcept {
  return t.initiator == initiator && t.responder == responder;
}

// Requirements on a protocol:
//   num_states()       — size of Q
//   apply(a, b)        — δ on the ordered pair (initiator a, responder b)
//   output(q)          — γ(q) in {0, 1}
//   initial_state(op)  — the input state X for an agent with opinion op
//   state_name(q)      — human-readable name for diagnostics
template <typename P>
concept ProtocolLike = requires(const P& p, State q, Opinion op) {
  { p.num_states() } -> std::convertible_to<std::size_t>;
  { p.apply(q, q) } -> std::same_as<Transition>;
  { p.output(q) } -> std::convertible_to<Output>;
  { p.initial_state(op) } -> std::same_as<State>;
  { p.state_name(q) } -> std::convertible_to<std::string>;
};

}  // namespace popbean
