// The two-state voter model [HP99] (see also Liggett [Lig85], Ch. 5).
//
//   (A, B) → (A, A)      (B, A) → (B, B)
//
// The responder simply adopts the initiator's opinion. On the clique this
// converges in expected Ω(n) parallel time and errs with probability equal
// to the initial minority fraction (1 − ε)/2 — the weakest baseline the
// paper's introduction contrasts against.
#pragma once

#include <string>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

class VoterProtocol {
 public:
  static constexpr State kA = 0;  // output 1
  static constexpr State kB = 1;  // output 0

  std::size_t num_states() const noexcept { return 2; }

  State initial_state(Opinion opinion) const noexcept {
    return opinion == Opinion::A ? kA : kB;
  }

  Output output(State q) const noexcept {
    POPBEAN_DCHECK(q < 2);
    return q == kA ? 1 : 0;
  }

  Transition apply(State initiator, [[maybe_unused]] State responder) const noexcept {
    POPBEAN_DCHECK(initiator < 2 && responder < 2);
    return {initiator, initiator};
  }

  std::string state_name(State q) const { return q == kA ? "A" : "B"; }
};

static_assert(ProtocolLike<VoterProtocol>);

}  // namespace popbean
