// The four-state exact majority protocol of [DV12] / [MNRS14]
// ("binary interval consensus" restricted to two intervals).
//
// States: strong opinions A, B and weak opinions a, b. Reactions (unordered;
// all others are null):
//
//   A + B → a + b     (mutual annihilation into weak states)
//   A + b → A + a     (a strong state converts an opposing weak state)
//   B + a → B + b
//
// The difference #A − #B is invariant, so the protocol is exact: the
// minority strong state is depleted first and the surviving strong opinion
// then converts all weak states. Expected parallel convergence time on the
// clique is O(log n / ε) [DV12], which the paper's Figure 3 contrasts with
// AVC; Theorem B.1 shows Ω(1/ε) is inherent at four states.
//
// This protocol is exactly AVC with m = 1, d = 1 (enforced by a test).
#pragma once

#include <string>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

class FourStateProtocol {
 public:
  // Dense state ids.
  static constexpr State kStrongA = 0;  // output 1
  static constexpr State kStrongB = 1;  // output 0
  static constexpr State kWeakA = 2;    // output 1
  static constexpr State kWeakB = 3;    // output 0

  std::size_t num_states() const noexcept { return 4; }

  State initial_state(Opinion opinion) const noexcept {
    return opinion == Opinion::A ? kStrongA : kStrongB;
  }

  Output output(State q) const noexcept {
    POPBEAN_DCHECK(q < 4);
    return (q == kStrongA || q == kWeakA) ? 1 : 0;
  }

  Transition apply(State x, State y) const noexcept {
    POPBEAN_DCHECK(x < 4 && y < 4);
    return {next(x, y), next(y, x)};
  }

  std::string state_name(State q) const {
    switch (q) {
      case kStrongA: return "A";
      case kStrongB: return "B";
      case kWeakA: return "a";
      case kWeakB: return "b";
      default: POPBEAN_CHECK_MSG(false, "invalid state"); return {};
    }
  }

 private:
  // New state of an agent in state `self` after meeting `other`. The rules
  // are symmetric in the pair, so δ(x, y) = (next(x, y), next(y, x)).
  static constexpr State next(State self, State other) noexcept {
    if (self == kStrongA) return other == kStrongB ? kWeakA : kStrongA;
    if (self == kStrongB) return other == kStrongA ? kWeakB : kStrongB;
    if (self == kWeakA) return other == kStrongB ? kWeakB : kWeakA;
    /* self == kWeakB */ return other == kStrongA ? kWeakA : kWeakB;
  }
};

static_assert(ProtocolLike<FourStateProtocol>);

}  // namespace popbean
