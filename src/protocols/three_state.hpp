// The three-state approximate majority protocol of [AAE08] / [PVV09],
// also studied as a model of epigenetic cell memory [DMST07] and shown
// equivalent to the cell-cycle switch dynamics [CCN12].
//
// States: opinions X (for A), Y (for B), and blank. One-way updates — only
// the responder changes state (this is the [AAE08] formulation):
//
//   (X, Y) → (X, blank)     (Y, X) → (Y, blank)
//   (X, blank) → (X, X)     (Y, blank) → (Y, Y)
//
// Converges in O(log n) parallel time w.h.p. when the initial margin is
// ω(√(n log n)), but errs — converges to the initial *minority* — with
// probability exp(−Θ(ε² n)) [PVV09], which is sizable for ε = 1/n (the
// paper's Figure 3 right panel). Blank agents keep their previous opinion's
// output so that γ is total; the paper's metric (time until all agents map
// to the same output) is unaffected, since blanks vanish in the absorbing
// configurations. We give blank two flavours (blank-from-X, blank-from-Y)
// purely for the output map; both behave identically in every interaction,
// matching the three-state dynamics state-for-state after projection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

class ThreeStateProtocol {
 public:
  static constexpr State kX = 0;       // opinion A, output 1
  static constexpr State kY = 1;       // opinion B, output 0
  static constexpr State kBlankX = 2;  // blank, last leaned A, output 1
  static constexpr State kBlankY = 3;  // blank, last leaned B, output 0

  std::size_t num_states() const noexcept { return 4; }

  State initial_state(Opinion opinion) const noexcept {
    return opinion == Opinion::A ? kX : kY;
  }

  Output output(State q) const noexcept {
    POPBEAN_DCHECK(q < 4);
    return (q == kX || q == kBlankX) ? 1 : 0;
  }

  Transition apply(State initiator, State responder) const noexcept {
    POPBEAN_DCHECK(initiator < 4 && responder < 4);
    const bool init_x = initiator == kX;
    const bool init_y = initiator == kY;
    if (!init_x && !init_y) return {initiator, responder};  // blank initiates: null
    if (responder == kX) {
      return {initiator, init_y ? kBlankX : kX};
    }
    if (responder == kY) {
      return {initiator, init_x ? kBlankY : kY};
    }
    // Blank responder adopts the initiator's opinion.
    return {initiator, init_x ? kX : kY};
  }

  std::string state_name(State q) const {
    switch (q) {
      case kX: return "x";
      case kY: return "y";
      case kBlankX: return "blank(x)";
      case kBlankY: return "blank(y)";
      default: POPBEAN_CHECK_MSG(false, "invalid state"); return {};
    }
  }

  // True when the configuration is one of the protocol's absorbing
  // configurations (all agents X, or all agents Y).
  static bool is_unanimous(const std::vector<std::uint64_t>& counts) {
    POPBEAN_CHECK(counts.size() == 4);
    const std::uint64_t n = counts[0] + counts[1] + counts[2] + counts[3];
    return counts[kX] == n || counts[kY] == n;
  }
};

static_assert(ProtocolLike<ThreeStateProtocol>);

}  // namespace popbean
