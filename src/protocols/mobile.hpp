// Token mobility for population protocols on sparse interaction graphs.
//
// The majority protocols in this library are specified for the complete
// graph, where agents are exchangeable and it never matters *which* agent
// ends up in which post-interaction state. On a sparse interaction graph
// states are pinned to nodes, and protocols whose progress requires two
// specific token kinds to become adjacent can deadlock: e.g. the four-state
// protocol's strong tokens never move, so on a ring an A-block and a
// B-block with weak states between them stall forever.
//
// [DV12]'s binary interval consensus — the origin of the four-state
// protocol — avoids this with *swap* rules: interactions that would
// otherwise be null exchange the two participants' states, making tokens
// perform random walks along the graph until productive meetings happen.
//
// Mobile<P> generalizes that construction to any protocol: apply P's
// transition; if it is null, swap the participants instead. On the complete
// graph this is count-process-equivalent to P (a swap never changes the
// configuration multiset), and on any connected graph it restores the
// token mobility [DV12] relies on.
//
// Note: swaps make almost every pair "productive" in the eyes of
// SkipEngine, defeating its null-skipping. Use Mobile<P> with AgentEngine
// (the only engine where graphs — and hence mobility — matter).
#pragma once

#include <string>
#include <utility>

#include "population/protocol.hpp"

namespace popbean {

template <ProtocolLike P>
class Mobile {
 public:
  explicit Mobile(P base) : base_(std::move(base)) {}

  const P& base() const noexcept { return base_; }

  std::size_t num_states() const noexcept { return base_.num_states(); }

  State initial_state(Opinion opinion) const noexcept {
    return base_.initial_state(opinion);
  }

  Output output(State q) const noexcept { return base_.output(q); }

  Transition apply(State initiator, State responder) const noexcept {
    const Transition t = base_.apply(initiator, responder);
    if (is_null(t, initiator, responder)) {
      return {responder, initiator};  // swap: the tokens walk
    }
    return t;
  }

  std::string state_name(State q) const { return base_.state_name(q); }

 private:
  P base_;
};

template <ProtocolLike P>
Mobile(P) -> Mobile<P>;

}  // namespace popbean
