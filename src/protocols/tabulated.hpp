// TabulatedProtocol — wraps any protocol in a precomputed s × s transition
// table (and cached outputs), trading O(s²) memory for branch-free lookups.
//
// Useful for protocols whose apply() involves nontrivial arithmetic (AVC)
// when s is small, and as test scaffolding: equality of two protocols'
// tables is equality of the protocols.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

class TabulatedProtocol {
 public:
  // Largest s for which tabulation is sensible (s² transitions, 8 bytes
  // each — 32 MiB at the cap).
  static constexpr std::size_t kMaxStates = 2048;

  template <ProtocolLike P>
  explicit TabulatedProtocol(const P& base)
      : num_states_(base.num_states()) {
    POPBEAN_CHECK_MSG(num_states_ <= kMaxStates,
                      "state space too large to tabulate");
    table_.resize(num_states_ * num_states_);
    outputs_.resize(num_states_);
    names_.resize(num_states_);
    for (State a = 0; a < num_states_; ++a) {
      outputs_[a] = base.output(a);
      names_[a] = base.state_name(a);
      for (State b = 0; b < num_states_; ++b) {
        table_[static_cast<std::size_t>(a) * num_states_ + b] = base.apply(a, b);
      }
    }
    initial_[0] = base.initial_state(Opinion::B);
    initial_[1] = base.initial_state(Opinion::A);
  }

  std::size_t num_states() const noexcept { return num_states_; }

  State initial_state(Opinion opinion) const noexcept {
    return initial_[static_cast<std::size_t>(opinion)];
  }

  Output output(State q) const noexcept {
    POPBEAN_DCHECK(q < num_states_);
    return outputs_[q];
  }

  Transition apply(State a, State b) const noexcept {
    POPBEAN_DCHECK(a < num_states_ && b < num_states_);
    return table_[static_cast<std::size_t>(a) * num_states_ + b];
  }

  std::string state_name(State q) const {
    POPBEAN_CHECK(q < num_states_);
    return names_[q];
  }

  friend bool operator==(const TabulatedProtocol& lhs,
                         const TabulatedProtocol& rhs) {
    return lhs.num_states_ == rhs.num_states_ && lhs.table_ == rhs.table_ &&
           lhs.outputs_ == rhs.outputs_ &&
           lhs.initial_[0] == rhs.initial_[0] &&
           lhs.initial_[1] == rhs.initial_[1];
  }

 private:
  std::size_t num_states_;
  std::vector<Transition> table_;
  std::vector<Output> outputs_;
  std::vector<std::string> names_;
  State initial_[2] = {0, 0};
};

static_assert(ProtocolLike<TabulatedProtocol>);

}  // namespace popbean
