// TabulatedProtocol — wraps any protocol in a precomputed s × s transition
// table (and cached outputs), trading O(s²) memory for branch-free lookups.
//
// Useful for protocols whose apply() involves nontrivial arithmetic (AVC)
// when s is small, and as test scaffolding: equality of two protocols'
// tables is equality of the protocols.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

class TabulatedProtocol {
 public:
  // Largest s for which tabulation is sensible (s² transitions, 8 bytes
  // each — 32 MiB at the cap).
  static constexpr std::size_t kMaxStates = 2048;

  template <ProtocolLike P>
  explicit TabulatedProtocol(const P& base)
      : num_states_(base.num_states()) {
    POPBEAN_CHECK_MSG(num_states_ <= kMaxStates,
                      "state space too large to tabulate");
    table_.resize(num_states_ * num_states_);
    outputs_.resize(num_states_);
    names_.resize(num_states_);
    for (State a = 0; a < num_states_; ++a) {
      outputs_[a] = base.output(a);
      names_[a] = base.state_name(a);
      for (State b = 0; b < num_states_; ++b) {
        const Transition t = base.apply(a, b);
        // An out-of-range target would poison every table lookup downstream
        // (engines index count vectors by these ids), so fail at tabulation
        // time, with the offending pair, not at first use.
        if (t.initiator >= num_states_ || t.responder >= num_states_) {
          std::string msg = "base.apply(";
          msg += base.state_name(a);
          msg += ", ";
          msg += base.state_name(b);
          msg += ") leaves the declared state space";
          POPBEAN_CHECK_MSG(false, msg);
        }
        table_[index(a, b)] = t;
      }
    }
    initial_[0] = base.initial_state(Opinion::B);
    initial_[1] = base.initial_state(Opinion::A);
    POPBEAN_CHECK_MSG(initial_[0] < num_states_ && initial_[1] < num_states_,
                      "base initial state leaves the declared state space");
  }

  // Raw-table constructor: adopts the table *without validation*. Intended
  // for protocol files (protocols/tabulated_io.hpp), whose contents are
  // untrusted until `verify::check_well_formed` has passed — a deliberately
  // broken table must be constructible so the verifier can diagnose it.
  TabulatedProtocol(std::size_t num_states, std::vector<Transition> table,
                    std::vector<Output> outputs, std::vector<std::string> names,
                    State initial_b, State initial_a)
      : num_states_(num_states),
        table_(std::move(table)),
        outputs_(std::move(outputs)),
        names_(std::move(names)),
        initial_{initial_b, initial_a} {
    POPBEAN_CHECK_MSG(num_states_ >= 1 && num_states_ <= kMaxStates,
                      "state count out of range");
    POPBEAN_CHECK(table_.size() == num_states_ * num_states_);
    POPBEAN_CHECK(outputs_.size() == num_states_);
    POPBEAN_CHECK(names_.size() == num_states_);
  }

  std::size_t num_states() const noexcept { return num_states_; }

  State initial_state(Opinion opinion) const noexcept {
    return initial_[opinion == Opinion::A ? 1 : 0];
  }

  Output output(State q) const noexcept {
    POPBEAN_DCHECK(q < num_states_);
    return outputs_[q];
  }

  Transition apply(State a, State b) const noexcept {
    POPBEAN_DCHECK(a < num_states_ && b < num_states_);
    return table_[index(a, b)];
  }

  std::string state_name(State q) const {
    POPBEAN_CHECK(q < num_states_);
    return names_[q];
  }

  friend bool operator==(const TabulatedProtocol& lhs,
                         const TabulatedProtocol& rhs) {
    return lhs.num_states_ == rhs.num_states_ && lhs.table_ == rhs.table_ &&
           lhs.outputs_ == rhs.outputs_ &&
           lhs.initial_[0] == rhs.initial_[0] &&
           lhs.initial_[1] == rhs.initial_[1];
  }

 private:
  // Row-major flat index. Both operands are widened to std::size_t before
  // the multiply: State is uint32_t, and `a * num_states_ + b` with a
  // 32-bit `a` would wrap for s beyond 2¹⁶ if done in 32 bits (kMaxStates
  // keeps us clear today; the cast keeps it correct if the cap moves).
  std::size_t index(State a, State b) const noexcept {
    return static_cast<std::size_t>(a) * num_states_ +
           static_cast<std::size_t>(b);
  }

  std::size_t num_states_;
  std::vector<Transition> table_;
  std::vector<Output> outputs_;
  std::vector<std::string> names_;
  State initial_[2] = {0, 0};
};

static_assert(ProtocolLike<TabulatedProtocol>);

}  // namespace popbean
