// Text serialization of tabulated protocols — the on-disk interchange
// format consumed by `popbean-lint` and producible from any ProtocolLike.
//
// Format (line-oriented; '#' starts a comment; blank lines ignored):
//
//   popbean-protocol v1
//   name <free text until end of line>            (optional)
//   states <s>
//   state <id> <name> <output>                    (one per state, any order)
//   initial A=<id> B=<id>
//   delta <a> <b> -> <a'> <b'>                    (productive pairs only;
//                                                  unlisted pairs are null)
//   invariant <name> <w0> <w1> … <w_{s-1}>        (optional, repeatable:
//                                                  a conservation law the
//                                                  file *claims*; the
//                                                  verifier proves or
//                                                  refutes it)
//
// Parsing is deliberately permissive about *semantics*: out-of-range delta
// targets, non-binary outputs, and invalid initial states all parse fine
// and surface as verifier findings instead — a broken file must be loadable
// for popbean-lint to diagnose it. Syntax errors (unparseable lines,
// duplicate/missing sections) throw std::runtime_error with a line number.
#pragma once

#include <cstdint>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "population/protocol.hpp"
#include "protocols/tabulated.hpp"
#include "util/check.hpp"

namespace popbean {

struct ParsedProtocolFile {
  std::string name;
  TabulatedProtocol protocol;
  // Declared conservation laws: (name, weight per state).
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> invariants;
};

namespace detail {

[[noreturn]] inline void parse_fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "protocol file, line " << line << ": " << what;
  throw std::runtime_error(os.str());
}

}  // namespace detail

inline ParsedProtocolFile parse_protocol_file(std::istream& in) {
  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  bool saw_initial = false;
  std::string name = "tabulated";
  std::size_t num_states = 0;
  std::vector<Transition> table;
  std::vector<Output> outputs;
  std::vector<std::string> names;
  std::vector<bool> state_declared;
  State initial_a = 0;
  State initial_b = 0;
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> invariants;

  const auto require_states = [&](const std::string& keyword) {
    if (num_states == 0) {
      std::string what = "'";
      what += keyword;
      what += "' before 'states <s>'";
      detail::parse_fail(line_number, what);
    }
  };

  // Trailing tokens after a fully-parsed line are corruption (e.g. two
  // lines fused by a lost newline), not decoration — reject them.
  const auto expect_line_end = [&](std::istringstream& tokens) {
    std::string extra;
    if (tokens >> extra) {
      detail::parse_fail(line_number, "trailing garbage '" + extra + "'");
    }
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank or comment-only

    if (!saw_header) {
      std::string version;
      if (keyword != "popbean-protocol" || !(tokens >> version) ||
          version != "v1") {
        detail::parse_fail(line_number,
                           "expected header 'popbean-protocol v1'");
      }
      saw_header = true;
    } else if (keyword == "name") {
      std::getline(tokens >> std::ws, name);
      if (name.empty()) detail::parse_fail(line_number, "empty name");
    } else if (keyword == "states") {
      if (num_states != 0) detail::parse_fail(line_number, "duplicate 'states'");
      long long s = 0;
      if (!(tokens >> s) || s < 1 ||
          static_cast<std::size_t>(s) > TabulatedProtocol::kMaxStates) {
        std::ostringstream what;
        what << "state count must be in [1, " << TabulatedProtocol::kMaxStates
             << "]";
        detail::parse_fail(line_number, what.str());
      }
      expect_line_end(tokens);
      num_states = static_cast<std::size_t>(s);
      outputs.assign(num_states, 0);
      names.resize(num_states);
      state_declared.assign(num_states, false);
      table.resize(num_states * num_states);
      for (State a = 0; a < num_states; ++a) {
        for (State b = 0; b < num_states; ++b) {
          table[a * num_states + b] = {a, b};  // default: null interaction
        }
      }
      for (State q = 0; q < num_states; ++q) {
        // Built through a stream and move-assigned: literal assignment or
        // string concatenation here trips a GCC 12 -Wrestrict false positive
        // (PR 105329) in some include orders.
        std::ostringstream generated;
        generated << 'q' << q;
        names[q] = std::move(generated).str();
      }
    } else if (keyword == "state") {
      require_states("state");
      std::uint64_t id = 0;
      std::string state_name;
      long long output = 0;
      if (!(tokens >> id >> state_name >> output) || id >= num_states) {
        detail::parse_fail(line_number,
                           "expected 'state <id < s> <name> <output>'");
      }
      if (state_declared[id]) {
        std::string what = "duplicate 'state' for id ";
        what += std::to_string(id);
        detail::parse_fail(line_number, what);
      }
      expect_line_end(tokens);
      state_declared[id] = true;
      names[id] = state_name;
      outputs[id] = static_cast<Output>(output);
    } else if (keyword == "initial") {
      require_states("initial");
      if (saw_initial) detail::parse_fail(line_number, "duplicate 'initial'");
      std::string first;
      std::string second;
      if (!(tokens >> first >> second)) {
        detail::parse_fail(line_number, "expected 'initial A=<id> B=<id>'");
      }
      bool have_a = false;
      bool have_b = false;
      for (const std::string& assignment : {first, second}) {
        if (assignment.size() < 3 || assignment[1] != '=') {
          std::ostringstream what;
          what << "expected assignment like 'A=0', got '" << assignment << "'";
          detail::parse_fail(line_number, what.str());
        }
        std::uint64_t id = 0;
        std::istringstream value(assignment.substr(2));
        if (!(value >> id) || !(value >> std::ws).eof()) {
          std::ostringstream what;
          what << "bad state id in '" << assignment << "'";
          detail::parse_fail(line_number, what.str());
        }
        if (assignment[0] == 'A' && !have_a) {
          initial_a = static_cast<State>(id);
          have_a = true;
        } else if (assignment[0] == 'B' && !have_b) {
          initial_b = static_cast<State>(id);
          have_b = true;
        } else {
          detail::parse_fail(line_number,
                             "expected one 'A=' and one 'B=' assignment");
        }
      }
      expect_line_end(tokens);
      saw_initial = true;
    } else if (keyword == "delta") {
      require_states("delta");
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      std::string arrow;
      std::uint64_t to_a = 0;
      std::uint64_t to_b = 0;
      if (!(tokens >> a >> b >> arrow >> to_a >> to_b) || arrow != "->") {
        detail::parse_fail(line_number,
                           "expected 'delta <a> <b> -> <a'> <b'>'");
      }
      if (a >= num_states || b >= num_states) {
        detail::parse_fail(line_number, "delta source pair out of range");
      }
      expect_line_end(tokens);
      // Targets are *not* range-checked: the verifier owns that diagnosis.
      table[a * num_states + b] = {static_cast<State>(to_a),
                                   static_cast<State>(to_b)};
    } else if (keyword == "invariant") {
      require_states("invariant");
      std::string invariant_name;
      if (!(tokens >> invariant_name)) {
        detail::parse_fail(line_number, "expected 'invariant <name> <weights…>'");
      }
      std::vector<std::int64_t> weights;
      weights.reserve(num_states);
      std::int64_t w = 0;
      while (tokens >> w) weights.push_back(w);
      if (!tokens.eof()) {
        tokens.clear();
        std::string extra;
        tokens >> extra;
        detail::parse_fail(line_number,
                           "non-numeric weight '" + extra + "'");
      }
      if (weights.size() != num_states) {
        std::ostringstream what;
        what << "invariant needs exactly " << num_states << " weights, got "
             << weights.size();
        detail::parse_fail(line_number, what.str());
      }
      invariants.emplace_back(std::move(invariant_name), std::move(weights));
    } else {
      detail::parse_fail(line_number, "unknown keyword '" + keyword + "'");
    }
  }

  if (in.bad()) {
    detail::parse_fail(line_number, "I/O error while reading protocol file");
  }
  if (!saw_header) detail::parse_fail(line_number, "missing header");
  if (num_states == 0) detail::parse_fail(line_number, "missing 'states'");
  if (!saw_initial) detail::parse_fail(line_number, "missing 'initial'");

  return ParsedProtocolFile{
      std::move(name),
      TabulatedProtocol(num_states, std::move(table), std::move(outputs),
                        std::move(names), initial_b, initial_a),
      std::move(invariants)};
}

inline ParsedProtocolFile parse_protocol_file(const std::string& text) {
  std::istringstream in(text);
  return parse_protocol_file(in);
}

// Serializes any protocol to the v1 format (productive pairs only).
// Optional invariants are emitted as declared conservation laws.
template <ProtocolLike P>
std::string serialize_protocol(
    const P& protocol, const std::string& name,
    const std::vector<std::pair<std::string, std::vector<std::int64_t>>>&
        invariants = {}) {
  const std::size_t s = protocol.num_states();
  std::ostringstream os;
  os << "popbean-protocol v1\n";
  os << "name " << name << "\n";
  os << "states " << s << "\n";
  for (State q = 0; q < s; ++q) {
    os << "state " << q << " " << protocol.state_name(q) << " "
       << protocol.output(q) << "\n";
  }
  os << "initial A=" << protocol.initial_state(Opinion::A)
     << " B=" << protocol.initial_state(Opinion::B) << "\n";
  for (State a = 0; a < s; ++a) {
    for (State b = 0; b < s; ++b) {
      const Transition t = protocol.apply(a, b);
      if (is_null(t, a, b)) continue;
      os << "delta " << a << " " << b << " -> " << t.initiator << " "
         << t.responder << "\n";
    }
  }
  for (const auto& [invariant_name, weights] : invariants) {
    POPBEAN_CHECK(weights.size() == s);
    os << "invariant " << invariant_name;
    for (const std::int64_t w : weights) os << " " << w;
    os << "\n";
  }
  return os.str();
}

}  // namespace popbean
