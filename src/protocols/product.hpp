// Parallel composition (product construction) of two population protocols.
//
// A standard tool of population-protocol theory (e.g. the register-machine
// simulations of [AAE08] compose a leader election with a phase clock):
// agents run both protocols simultaneously on the product state space
// Q = Q₁ × Q₂, each interaction applying both transition functions to the
// respective components. The composite's output is taken from a chosen
// component.
//
// The product of protocols with s₁ and s₂ states has s₁·s₂ states, so the
// count-based engines remain usable for moderate components; the skip
// engine's reactive analysis applies unchanged (a product pair is null iff
// both components are null).
#pragma once

#include <string>
#include <utility>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

enum class ProductOutput { kFirst, kSecond };

template <ProtocolLike P1, ProtocolLike P2>
class Product {
 public:
  Product(P1 first, P2 second, ProductOutput output_from = ProductOutput::kFirst)
      : first_(std::move(first)), second_(std::move(second)),
        output_from_(output_from) {}

  const P1& first() const noexcept { return first_; }
  const P2& second() const noexcept { return second_; }

  std::size_t num_states() const noexcept {
    return first_.num_states() * second_.num_states();
  }

  State encode(State q1, State q2) const {
    POPBEAN_DCHECK(q1 < first_.num_states());
    POPBEAN_DCHECK(q2 < second_.num_states());
    return static_cast<State>(q1 * second_.num_states() + q2);
  }

  std::pair<State, State> decode(State q) const {
    POPBEAN_DCHECK(q < num_states());
    return {static_cast<State>(q / second_.num_states()),
            static_cast<State>(q % second_.num_states())};
  }

  State initial_state(Opinion opinion) const noexcept {
    return encode(first_.initial_state(opinion),
                  second_.initial_state(opinion));
  }

  Output output(State q) const noexcept {
    const auto [q1, q2] = decode(q);
    return output_from_ == ProductOutput::kFirst ? first_.output(q1)
                                                 : second_.output(q2);
  }

  Transition apply(State a, State b) const noexcept {
    const auto [a1, a2] = decode(a);
    const auto [b1, b2] = decode(b);
    const Transition t1 = first_.apply(a1, b1);
    const Transition t2 = second_.apply(a2, b2);
    return {encode(t1.initiator, t2.initiator),
            encode(t1.responder, t2.responder)};
  }

  std::string state_name(State q) const {
    const auto [q1, q2] = decode(q);
    std::string name;
    name.reserve(16);
    name.push_back('(');
    name.append(first_.state_name(q1));
    name.push_back(',');
    name.append(second_.state_name(q2));
    name.push_back(')');
    return name;
  }

 private:
  P1 first_;
  P2 second_;
  ProductOutput output_from_;
};

template <ProtocolLike P1, ProtocolLike P2>
Product(P1, P2) -> Product<P1, P2>;
template <ProtocolLike P1, ProtocolLike P2>
Product(P1, P2, ProductOutput) -> Product<P1, P2>;

}  // namespace popbean
