// Classic pairwise-elimination leader election.
//
//   (L, L) → (L, F)          two leaders meet; one survives
//   (L, F) → (L, F)          null
//
// Not a majority protocol — included as the substrate for the paper's
// closing discussion (§6), which asks whether the average-and-conquer
// technique extends to leader election. The bench suite measures its Θ(n)
// parallel convergence time as the point of comparison. The `output`
// function reports 1 for leaders so the generic engines can track the
// leader count; convergence here means "exactly one leader", checked via
// `leaders()` rather than output unanimity.
#pragma once

#include <string>

#include "population/configuration.hpp"
#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean {

class LeaderElectionProtocol {
 public:
  static constexpr State kLeader = 0;
  static constexpr State kFollower = 1;

  std::size_t num_states() const noexcept { return 2; }

  // Everyone starts as a leader regardless of opinion.
  State initial_state(Opinion) const noexcept { return kLeader; }

  Output output(State q) const noexcept {
    POPBEAN_DCHECK(q < 2);
    return q == kLeader ? 1 : 0;
  }

  Transition apply(State initiator, State responder) const noexcept {
    POPBEAN_DCHECK(initiator < 2 && responder < 2);
    if (initiator == kLeader && responder == kLeader) {
      return {kLeader, kFollower};
    }
    return {initiator, responder};
  }

  std::string state_name(State q) const {
    return q == kLeader ? "L" : "F";
  }

  static std::uint64_t leaders(const Counts& counts) {
    POPBEAN_CHECK(counts.size() == 2);
    return counts[kLeader];
  }
};

static_assert(ProtocolLike<LeaderElectionProtocol>);

}  // namespace popbean
