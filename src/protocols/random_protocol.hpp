// Uniformly random deterministic protocols, for fuzz-style differential
// testing of the simulation engines.
//
// A RandomProtocol draws, for every ordered state pair, a uniformly random
// result pair (with a configurable probability of being null). It computes
// nothing useful — that is the point: the three engines claim to simulate
// *any* ProtocolLike identically in distribution, so we compare them on
// protocols with no structure a buggy engine could hide behind.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "population/protocol.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean {

class RandomProtocol {
 public:
  // `states` >= 2; `null_fraction` of ordered pairs are forced null (so the
  // skip engine's bookkeeping sees a realistic mix).
  RandomProtocol(std::size_t states, std::uint64_t seed,
                 double null_fraction = 0.5)
      : num_states_(states) {
    POPBEAN_CHECK(states >= 2);
    POPBEAN_CHECK(null_fraction >= 0.0 && null_fraction <= 1.0);
    Xoshiro256ss rng(seed);
    table_.resize(states * states);
    for (State a = 0; a < states; ++a) {
      for (State b = 0; b < states; ++b) {
        if (rng.bernoulli(null_fraction)) {
          table_[index(a, b)] = {a, b};
        } else {
          table_[index(a, b)] = {static_cast<State>(rng.below(states)),
                                 static_cast<State>(rng.below(states))};
        }
      }
    }
    // Output: arbitrary split of the state space.
    outputs_.resize(states);
    for (State q = 0; q < states; ++q) {
      outputs_[q] = rng.bernoulli(0.5) ? 1 : 0;
    }
  }

  std::size_t num_states() const noexcept { return num_states_; }

  State initial_state(Opinion opinion) const noexcept {
    return opinion == Opinion::A ? 0 : 1;
  }

  Output output(State q) const noexcept { return outputs_[q]; }

  Transition apply(State a, State b) const noexcept {
    POPBEAN_DCHECK(a < num_states_ && b < num_states_);
    return table_[index(a, b)];
  }

  // Built via += rather than "r" + to_string(q): the operator+ overload for
  // a char literal and an rvalue string inlines to string::insert, which
  // trips GCC 12's -Wrestrict false positive under -O2 -Werror.
  std::string state_name(State q) const {
    std::string name("r");
    name += std::to_string(q);
    return name;
  }

 private:
  std::size_t index(State a, State b) const noexcept {
    return static_cast<std::size_t>(a) * num_states_ + b;
  }

  std::size_t num_states_;
  std::vector<Transition> table_;
  std::vector<Output> outputs_;
};

static_assert(ProtocolLike<RandomProtocol>);

}  // namespace popbean
