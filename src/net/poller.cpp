#include "net/poller.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/epoll.h>
#include <unistd.h>

#include "util/check.hpp"

namespace popbean::net {

namespace {

std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

Poller::Poller(bool force_poll) {
  if (!force_poll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    // epoll_fd_ stays -1 on failure and the poll fallback takes over.
  }
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Poller::add(int fd, bool want_read, bool want_write) {
  POPBEAN_CHECK_MSG(fd >= 0, "Poller::add: negative fd");
  POPBEAN_CHECK_MSG(interest_.find(fd) == interest_.end(),
                    "Poller::add: fd already registered");
  interest_[fd] = Interest{want_read, want_write};
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void Poller::modify(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  POPBEAN_CHECK_MSG(it != interest_.end(),
                    "Poller::modify: fd not registered");
  it->second = Interest{want_read, want_write};
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
}

void Poller::remove(int fd) {
  if (interest_.erase(fd) == 0) return;
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
  }
}

std::vector<Poller::Event> Poller::wait(std::chrono::milliseconds timeout) {
  const int timeout_ms =
      timeout.count() < 0
          ? -1
          : static_cast<int>(
                std::min<std::chrono::milliseconds::rep>(timeout.count(),
                                                         60'000));
  std::vector<Event> events;
  if (epoll_fd_ >= 0) {
    epoll_event ready[64];
    const int n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    if (n <= 0) return events;  // timeout, or EINTR treated as one
    events.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events.push_back(event);
    }
    return events;
  }
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    pollfd p{};
    p.fd = fd;
    if (want.read) p.events |= POLLIN;
    if (want.write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n <= 0) return events;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event event;
    event.fd = p.fd;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events.push_back(event);
  }
  return events;
}

}  // namespace popbean::net
