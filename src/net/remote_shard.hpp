// RemoteShard: a serve::ShardProxy that forwards jobs to a popbean-serve
// process over TCP (DESIGN.md §14).
//
// The router's spill walk treats a remote process exactly like a local
// shard: try_submit either takes the job (and owes exactly one response
// through the shared sink) or names a reason and the walk continues. The
// wire is the same strict NDJSON v2 the stdin front end speaks —
// serve::job_request_line out, serve::parse_job_response back — with the
// spec's trace_id riding along so the remote's span tree joins the local
// one on a single trace id.
//
// Wire-id prefixing: one RemoteShard multiplexes jobs from MANY client
// connections over ONE TCP connection, but the remote's RequestReader
// enforces per-connection id uniqueness. Every forwarded job therefore
// travels as "s<seq>!<original-id>" (seq strictly monotonic per link);
// the original id and origin token are restored from the in-flight table
// before the response is emitted, and the response's shard index is
// rewritten to this proxy's router slot.
//
// Failure containment:
//   * a CircuitBreaker guards the LINK (not the jobs): connect failures
//     and lost connections record failures, delivered responses record
//     successes regardless of the job's own outcome. A dead remote trips
//     the breaker after failure_threshold rejections, and the cooldown →
//     half-open probe → close cycle is what CI observes as "breaker trip
//     + recovery" when the remote returns.
//   * connect/write retries use DecorrelatedJitterBackoff and are safe
//     against duplicates by construction: the remote admits only COMPLETE
//     lines, so a frame that never finished writing never ran. Once
//     write_all reports the full line out, the submission is final
//     (at-most-once from then on).
//   * a lost connection fails every in-flight job as failed("remote_lost")
//     — the exactly-one-response contract survives the remote's death.
//   * an inflight cap bounds both memory and the bytes ever outstanding
//     on the socket (so bounded, lock-held writes cannot stall: the cap
//     keeps outstanding data far below the kernel send buffer).
//
// Threading: try_submit serializes under one mutex (bounded work: at most
// max_attempts × (connect_timeout + backoff cap)); a reader thread owns
// the receive side and the fd's close. The response sink is called with
// no RemoteShard lock held and must outlive this object.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "serve/circuit_breaker.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "util/backoff.hpp"
#include "util/cli.hpp"

namespace popbean::net {

struct RemoteShardConfig {
  HostPort target;
  std::size_t slot = 0;  // router slot index stamped into responses
  std::size_t max_inflight = 256;
  std::chrono::milliseconds connect_timeout{250};
  std::size_t max_attempts = 3;  // connect+write attempts per submission
  BackoffPolicy backoff{std::chrono::milliseconds{20},
                        std::chrono::milliseconds{200}};
  serve::BreakerConfig breaker;
  std::uint64_t seed = 0x9e3;
  std::size_t max_response_line = 1 << 20;
};

class RemoteShard : public serve::ShardProxy {
 public:
  struct Stats {
    std::uint64_t connects = 0;       // successful link (re)establishments
    std::uint64_t connect_failures = 0;
    std::uint64_t forwarded = 0;      // complete lines written
    std::uint64_t write_retries = 0;  // reconnect-and-rewrite attempts
    std::uint64_t responses = 0;      // responses restored and emitted
    std::uint64_t remote_lost = 0;    // in-flight jobs failed by link loss
    std::uint64_t stray = 0;          // responses with no in-flight entry
    std::uint64_t malformed = 0;      // lines that failed strict parsing
    std::uint64_t shutdown_flushed = 0;
  };

  // `emit` receives every terminal response this proxy owes (restored
  // remote responses, remote_lost/shutdown failures); it must be
  // thread-safe and outlive the proxy.
  RemoteShard(RemoteShardConfig config, serve::JobService::ResponseFn emit);
  ~RemoteShard() override;

  RemoteShard(const RemoteShard&) = delete;
  RemoteShard& operator=(const RemoteShard&) = delete;

  std::optional<std::string> try_submit(serve::JobSpec spec) override;
  void begin_drain() override;
  bool drain(std::chrono::milliseconds budget) override;

  Stats stats() const;
  std::size_t inflight() const;
  serve::CircuitBreaker::State breaker_state() const;
  std::uint64_t breaker_opens() const;
  std::uint64_t breaker_closes() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::string id;            // original client id
    std::uint64_t origin = 0;  // original front-end token
    std::uint64_t trace_id = 0;
  };

  // Ensures a live link, joining a finished reader first. Returns false
  // with *why set when the link cannot be (re)established now.
  bool ensure_link(std::unique_lock<std::mutex>& lock, std::string* why);
  void sever_link_locked();  // shutdown(2); the reader closes and clears
  void reader_loop(int fd, std::uint64_t generation);
  void handle_line(std::string_view line);

  RemoteShardConfig config_;
  serve::JobService::ResponseFn emit_;

  mutable std::mutex mutex_;
  std::condition_variable drain_cv_;
  int fd_ = -1;
  std::uint64_t generation_ = 0;
  std::uint64_t next_seq_ = 0;
  std::map<std::string, Pending, std::less<>> inflight_;
  serve::CircuitBreaker breaker_;
  DecorrelatedJitterBackoff backoff_;
  Stats stats_;
  bool draining_ = false;

  std::thread reader_;
  std::atomic<bool> reader_done_{false};
};

}  // namespace popbean::net
