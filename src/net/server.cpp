#include "net/server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/net_io.hpp"

namespace popbean::net {

namespace {
constexpr std::chrono::milliseconds kTick{25};
}

TcpServer::TcpServer(TcpServerConfig config, SubmitFn submit,
                     ResponseFn on_local)
    : config_(std::move(config)),
      submit_(std::move(submit)),
      on_local_(std::move(on_local)),
      admit_gauge_(config_.admit_enter, config_.admit_exit) {
  POPBEAN_CHECK_MSG(submit_ != nullptr, "TcpServer: submit sink required");
  POPBEAN_CHECK_MSG(on_local_ != nullptr,
                    "TcpServer: local-response sink required");
  POPBEAN_CHECK_MSG(config_.max_connections >= 1,
                    "TcpServer: max_connections must be >= 1");
}

TcpServer::~TcpServer() { stop(); }

bool TcpServer::start(std::string* error) {
  netio::ignore_sigpipe();
  listen_fd_ = netio::listen_tcp(config_.listen, config_.backlog, error,
                                 &port_);
  if (listen_fd_ < 0) return false;
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    if (error != nullptr) *error = "pipe2 failed for the wakeup pipe";
    netio::close_fd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  poller_ = std::make_unique<Poller>(config_.force_poll);
  poller_->add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
  poller_->add(wake_read_, /*want_read=*/true, /*want_write=*/false);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void TcpServer::wake() {
  if (wake_write_ < 0) return;
  const char byte = 'w';
  (void)netio::write_some(wake_write_, &byte, 1);
}

void TcpServer::deliver(const serve::JobResponse& response) {
  {
    std::lock_guard lock(mutex_);
    auto it = conns_.find(response.origin);
    if (it == conns_.end()) {
      ++stats_.responses_dropped;
    } else {
      Connection& conn = it->second;
      if (conn.inflight > 0) --conn.inflight;
      if (conn.fd >= 0) {
        conn.outbuf += serve::job_response_line(response);
        ++stats_.responses_delivered;
      } else {
        // Tombstone: the socket died with this job in flight. The ledger
        // already heard the response through the front end's sink; the
        // client never will.
        ++stats_.responses_dropped;
      }
    }
  }
  wake();
}

void TcpServer::begin_drain() {
  {
    std::lock_guard lock(mutex_);
    draining_ = true;
  }
  wake();
}

bool TcpServer::drain(std::chrono::milliseconds budget) {
  begin_drain();
  std::unique_lock lock(mutex_);
  drain_cv_.wait_for(lock, budget, [this] { return all_quiescent_locked(); });
  return all_quiescent_locked();
}

void TcpServer::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      // Already stopped (or stopping); just make sure the thread is gone.
    }
    stop_ = true;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mutex_);
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) {
      by_fd_.erase(conn.fd);
      netio::close_fd(conn.fd);
      conn.fd = -1;
    }
  }
  conns_.clear();
  by_fd_.clear();
  poller_.reset();
  if (listen_fd_ >= 0) netio::close_fd(listen_fd_);
  if (wake_read_ >= 0) netio::close_fd(wake_read_);
  if (wake_write_ >= 0) netio::close_fd(wake_write_);
  listen_fd_ = wake_read_ = wake_write_ = -1;
}

TcpServer::Stats TcpServer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t TcpServer::connection_count() const {
  std::lock_guard lock(mutex_);
  return by_fd_.size();
}

bool TcpServer::all_quiescent_locked() const {
  for (const auto& [id, conn] : conns_) {
    if (conn.inflight != 0 || !conn.outbuf.empty()) return false;
  }
  return true;
}

void TcpServer::loop() {
  bool drain_applied = false;
  for (;;) {
    std::vector<Poller::Event> events = poller_->wait(kTick);
    std::vector<serve::JobSpec> submits;
    std::vector<serve::JobResponse> locals;
    bool stopping = false;
    {
      std::lock_guard lock(mutex_);
      if (stop_) {
        stopping = true;
      } else {
        if (draining_ && !drain_applied) {
          drain_applied = true;
          accepting_ = false;
          poller_->remove(listen_fd_);
        }
        for (const Poller::Event& event : events) {
          if (event.fd == wake_read_) {
            char sink[256];
            while (netio::read_some(wake_read_, sink, sizeof sink).ok()) {
            }
            continue;
          }
          if (event.fd == listen_fd_) {
            if (accepting_) handle_accept();
            continue;
          }
          auto fit = by_fd_.find(event.fd);
          if (fit == by_fd_.end()) continue;
          auto cit = conns_.find(fit->second);
          if (cit == conns_.end()) continue;
          Connection& conn = cit->second;
          if ((event.readable || event.error) && conn.fd >= 0 &&
              conn.read_open) {
            handle_readable(conn);
          }
          if (conn.fd >= 0 && (event.writable || event.error) &&
              !conn.outbuf.empty()) {
            conn.write_blocked_since.reset();
            flush(conn);
          }
          if (event.error && conn.fd >= 0 && !conn.read_open &&
              conn.outbuf.empty()) {
            // Hard hangup with nothing left to move in either direction:
            // close now instead of spinning on a level-triggered error.
            close_connection(conn, /*flushed=*/true);
          }
        }
        sweep(Clock::now());
        submits.swap(staged_submits_);
        locals.swap(staged_local_);
        if (draining_) drain_cv_.notify_all();
      }
    }
    if (stopping) break;
    for (serve::JobSpec& spec : submits) submit_(std::move(spec));
    for (const serve::JobResponse& response : locals) on_local_(response);
  }
}

void TcpServer::handle_accept() {
  for (;;) {
    int client_fd = -1;
    const netio::IoResult result =
        netio::accept_client(listen_fd_, &client_fd);
    if (result.status != netio::IoStatus::kOk) return;
    ++stats_.accepted;
    const std::size_t live = by_fd_.size();
    const double occupancy =
        static_cast<double>(live + 1) /
        static_cast<double>(config_.max_connections);
    const bool latched = admit_gauge_.update(occupancy);
    if (draining_ || live >= config_.max_connections || latched) {
      ++stats_.admission_rejected;
      serve::JobResponse reject;
      reject.outcome = serve::JobOutcome::kOverloaded;
      reject.error = draining_ ? "draining" : "too_many_connections";
      const std::string line = serve::job_response_line(reject);
      (void)netio::write_some(client_fd, line.data(), line.size());
      netio::close_fd(client_fd);
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    auto [it, inserted] =
        conns_.emplace(id, Connection(config_.max_line_bytes));
    POPBEAN_CHECK_MSG(inserted, "TcpServer: duplicate connection id");
    Connection& conn = it->second;
    conn.id = id;
    conn.fd = client_fd;
    conn.last_activity = Clock::now();
    by_fd_[client_fd] = id;
    poller_->add(client_fd, /*want_read=*/true, /*want_write=*/false);
  }
}

void TcpServer::handle_readable(Connection& conn) {
  char buffer[65536];
  bool eof = false;
  bool failed = false;
  for (;;) {
    const netio::IoResult result =
        netio::read_some(conn.fd, buffer, sizeof buffer);
    if (result.status == netio::IoStatus::kOk) {
      stats_.bytes_read += result.bytes;
      conn.framer.feed(std::string_view(buffer, result.bytes));
      conn.last_activity = Clock::now();
      continue;
    }
    if (result.status == netio::IoStatus::kWouldBlock) break;
    if (result.status == netio::IoStatus::kClosed) {
      eof = true;
      break;
    }
    failed = true;  // abrupt reset
    break;
  }
  while (!conn.close_after_flush) {
    std::optional<LineFramer::Frame> frame = conn.framer.next();
    if (!frame.has_value()) break;
    if (frame->oversized) {
      ++stats_.oversized_frames;
      serve::JobResponse response;
      response.outcome = serve::JobOutcome::kInvalid;
      response.error = "oversized frame at byte " +
                       std::to_string(frame->offset) + " (" +
                       std::to_string(frame->wire_size) + " bytes, limit " +
                       std::to_string(config_.max_line_bytes) + ")";
      synthesize(conn, std::move(response));
      conn.read_open = false;
      conn.close_after_flush = true;
      break;
    }
    ++stats_.frames;
    serve::ParsedRequest parsed =
        conn.reader.next(frame->line, frame->wire_size);
    if (auto* spec = std::get_if<serve::JobSpec>(&parsed)) {
      spec->origin = conn.id;
      ++conn.inflight;
      staged_submits_.push_back(std::move(*spec));
    } else {
      const auto& error = std::get<serve::RequestError>(parsed);
      ++stats_.invalid_frames;
      serve::JobResponse response;
      response.id = error.id;
      response.outcome = serve::JobOutcome::kInvalid;
      response.error = error.error;
      synthesize(conn, std::move(response));
    }
  }
  if (conn.framer.has_partial()) {
    if (!conn.partial_since.has_value()) {
      conn.partial_since = Clock::now();
    }
  } else {
    conn.partial_since.reset();
  }
  if (failed) {
    close_connection(conn, /*flushed=*/false);
    return;
  }
  if (eof && conn.read_open) {
    conn.read_open = false;
    ++stats_.half_closed;
    if (conn.framer.has_partial()) note_torn(conn);
  }
  if (!conn.outbuf.empty()) flush(conn);
}

void TcpServer::synthesize(Connection& conn, serve::JobResponse response) {
  response.origin = conn.id;
  if (conn.fd >= 0) conn.outbuf += serve::job_response_line(response);
  staged_local_.push_back(std::move(response));
}

void TcpServer::note_torn(Connection& conn) {
  ++stats_.torn_frames;
  serve::JobResponse response;
  response.outcome = serve::JobOutcome::kInvalid;
  response.error = "torn frame at byte " +
                   std::to_string(conn.framer.partial_offset()) + " (" +
                   std::to_string(conn.framer.partial_size()) +
                   " bytes without terminator)";
  synthesize(conn, std::move(response));
  conn.partial_since.reset();
  conn.read_open = false;
  conn.close_after_flush = true;
}

void TcpServer::shed_slow(Connection& conn, const char* why) {
  ++stats_.slow_client_sheds;
  serve::JobResponse response;
  response.outcome = serve::JobOutcome::kFailed;
  response.error = why;
  response.origin = conn.id;
  // The socket is stalled or its buffer is full — the shed notice cannot
  // be written to it; it goes to the ledger only.
  staged_local_.push_back(std::move(response));
  close_connection(conn, /*flushed=*/false);
}

void TcpServer::flush(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const netio::IoResult result =
        netio::write_some(conn.fd, conn.outbuf.data(), conn.outbuf.size());
    if (result.status == netio::IoStatus::kOk) {
      stats_.bytes_written += result.bytes;
      conn.outbuf.erase(0, result.bytes);
      conn.last_activity = Clock::now();
      continue;
    }
    if (result.status == netio::IoStatus::kWouldBlock) {
      if (!conn.write_blocked_since.has_value()) {
        conn.write_blocked_since = Clock::now();
      }
      return;
    }
    // EPIPE/ECONNRESET: the peer is gone; responses still in flight drain
    // into the tombstone.
    close_connection(conn, /*flushed=*/false);
    return;
  }
  conn.write_blocked_since.reset();
}

void TcpServer::close_connection(Connection& conn, bool flushed) {
  (void)flushed;
  if (conn.fd >= 0) {
    poller_->remove(conn.fd);
    by_fd_.erase(conn.fd);
    netio::close_fd(conn.fd);
    conn.fd = -1;
    ++stats_.closed;
    admit_gauge_.update(static_cast<double>(by_fd_.size()) /
                        static_cast<double>(config_.max_connections));
  }
  conn.outbuf.clear();
  conn.read_open = false;
  conn.reading_paused = false;
  conn.partial_since.reset();
  conn.write_blocked_since.reset();
}

void TcpServer::sweep(Clock::time_point now) {
  for (auto& [id, conn] : conns_) {
    if (conn.fd < 0) continue;
    // Soft backpressure: a client not draining its responses stops being
    // read from well before it is shed.
    if (!conn.reading_paused &&
        conn.outbuf.size() > config_.max_write_buffer / 2) {
      conn.reading_paused = true;
    } else if (conn.reading_paused &&
               conn.outbuf.size() < config_.max_write_buffer / 4) {
      conn.reading_paused = false;
    }
    if (conn.outbuf.size() > config_.max_write_buffer) {
      shed_slow(conn, "slow_client");
      continue;
    }
    if (!conn.outbuf.empty()) {
      flush(conn);
      if (conn.fd < 0) continue;
    }
    if (!conn.outbuf.empty() && conn.write_blocked_since.has_value() &&
        now - *conn.write_blocked_since > config_.write_deadline) {
      shed_slow(conn, "slow_client");
      continue;
    }
    if (conn.read_open && conn.partial_since.has_value() &&
        now - *conn.partial_since > config_.read_deadline) {
      note_torn(conn);
    }
    if (conn.read_open && !draining_ && conn.inflight == 0 &&
        conn.outbuf.empty() && !conn.framer.has_partial() &&
        now - conn.last_activity > config_.idle_timeout) {
      ++stats_.idle_reaped;
      close_connection(conn, /*flushed=*/true);
      continue;
    }
    if ((!conn.read_open || conn.close_after_flush || draining_) &&
        conn.inflight == 0 && conn.outbuf.empty()) {
      close_connection(conn, /*flushed=*/true);
      continue;
    }
    update_interest(conn);
  }
  reap_tombstones();
}

void TcpServer::update_interest(Connection& conn) {
  if (conn.fd < 0) return;
  const bool want_read = conn.read_open && !conn.reading_paused &&
                         !conn.close_after_flush && !draining_;
  const bool want_write = !conn.outbuf.empty();
  poller_->modify(conn.fd, want_read, want_write);
}

void TcpServer::reap_tombstones() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second.fd < 0 && it->second.inflight == 0) {
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace popbean::net
