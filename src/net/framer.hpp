// LineFramer: incremental NDJSON framing over a TCP byte stream
// (DESIGN.md §14).
//
// TCP delivers bytes, not lines: a frame may arrive split at any byte
// boundary, several frames may land in one read, and a hostile or broken
// client may never send the terminating '\n' at all. The framer owns that
// reassembly so the server's per-connection loop only ever sees whole
// frames, each stamped with its exact wire offset and wire size — the
// strict codec's diagnostics (RequestReader byte offsets, torn-frame
// reports) stay byte-accurate even for CRLF clients.
//
// Memory is bounded by max_line_bytes: once a frame exceeds the cap
// without a terminator, the framer emits a single oversized Frame (content
// dropped, offset preserved), then discards bytes until the next '\n'
// before resynchronizing. The server's policy is to reject and doom the
// connection on oversize, but the framer never trusts the policy to save
// its memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace popbean::net {

class LineFramer {
 public:
  struct Frame {
    std::string line;             // terminators stripped ('\n', and a '\r'
                                  // immediately before it); empty when
                                  // oversized
    std::uint64_t offset = 0;     // stream offset of the frame's first byte
    std::uint64_t wire_size = 0;  // bytes consumed on the wire (terminator
                                  // included; for an oversized frame, the
                                  // bytes seen before giving up)
    bool oversized = false;       // exceeded max_line_bytes unterminated
  };

  explicit LineFramer(std::size_t max_line_bytes)
      : max_line_(max_line_bytes) {}

  // Appends received bytes. While resynchronizing after an oversized
  // frame, bytes up to and including the next '\n' are discarded.
  void feed(std::string_view bytes) {
    if (discarding_) {
      const std::size_t nl = bytes.find('\n');
      if (nl == std::string_view::npos) {
        consumed_ += bytes.size();
        return;
      }
      consumed_ += nl + 1;
      discarding_ = false;
      bytes.remove_prefix(nl + 1);
    }
    buffer_.append(bytes);
  }

  // Extracts the next complete (or oversized) frame; nullopt when the
  // buffered bytes hold no terminator and are still under the cap.
  std::optional<Frame> next() {
    const std::size_t nl = buffer_.find('\n');
    if (nl == std::string::npos) {
      if (buffer_.size() <= max_line_) return std::nullopt;
      Frame frame;
      frame.oversized = true;
      frame.offset = consumed_;
      frame.wire_size = buffer_.size();
      consumed_ += buffer_.size();
      buffer_.clear();
      discarding_ = true;
      return frame;
    }
    Frame frame;
    frame.offset = consumed_;
    frame.wire_size = nl + 1;
    if (nl > max_line_) {
      // Terminated, but past the cap: same oversized rejection, and the
      // stream resynchronizes at the terminator we already found.
      frame.oversized = true;
    } else {
      frame.line = buffer_.substr(0, nl);
      if (!frame.line.empty() && frame.line.back() == '\r') {
        frame.line.pop_back();
      }
    }
    buffer_.erase(0, nl + 1);
    consumed_ += nl + 1;
    return frame;
  }

  // A torn frame: bytes buffered (or being discarded) past the last
  // complete frame. The offset names where the torn frame began.
  bool has_partial() const noexcept {
    return !buffer_.empty() || discarding_;
  }
  std::uint64_t partial_offset() const noexcept { return consumed_; }
  std::size_t partial_size() const noexcept { return buffer_.size(); }

  // Total stream bytes accounted for (framed, discarded, or buffered).
  std::uint64_t bytes_seen() const noexcept {
    return consumed_ + buffer_.size();
  }

 private:
  std::size_t max_line_;
  std::string buffer_;
  std::uint64_t consumed_ = 0;  // stream offset of buffer_[0]
  bool discarding_ = false;     // dropping until the next '\n'
};

}  // namespace popbean::net
