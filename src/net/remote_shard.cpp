#include "net/remote_shard.hpp"

#include <sys/socket.h>

#include <thread>
#include <utility>
#include <vector>

#include "net/framer.hpp"
#include "serve/codec.hpp"
#include "util/check.hpp"
#include "util/net_io.hpp"
#include "util/rng.hpp"

namespace popbean::net {

RemoteShard::RemoteShard(RemoteShardConfig config,
                         serve::JobService::ResponseFn emit)
    : config_(std::move(config)),
      emit_(std::move(emit)),
      breaker_(config_.breaker),
      backoff_(config_.backoff, Xoshiro256ss(config_.seed)) {
  POPBEAN_CHECK_MSG(emit_ != nullptr, "RemoteShard: response sink required");
  POPBEAN_CHECK_MSG(config_.max_inflight >= 1,
                    "RemoteShard: max_inflight must be >= 1");
  POPBEAN_CHECK_MSG(config_.max_attempts >= 1,
                    "RemoteShard: max_attempts must be >= 1");
  netio::ignore_sigpipe();
}

RemoteShard::~RemoteShard() {
  std::vector<serve::JobResponse> flushed;
  {
    std::lock_guard lock(mutex_);
    draining_ = true;
    sever_link_locked();
  }
  if (reader_.joinable()) reader_.join();
  {
    std::lock_guard lock(mutex_);
    for (auto& [wire_id, pending] : inflight_) {
      serve::JobResponse response;
      response.id = pending.id;
      response.outcome = serve::JobOutcome::kFailed;
      response.error = "shutdown";
      response.trace_id = pending.trace_id;
      response.origin = pending.origin;
      response.shard = config_.slot;
      flushed.push_back(std::move(response));
    }
    stats_.shutdown_flushed += inflight_.size();
    inflight_.clear();
  }
  for (const serve::JobResponse& response : flushed) emit_(response);
}

void RemoteShard::sever_link_locked() {
  if (fd_ >= 0) {
    // The reader owns close(2); shutdown unblocks its read and makes the
    // fd useless to concurrent writers without racing fd reuse.
    ::shutdown(fd_, SHUT_RDWR);
    fd_ = -1;
  }
}

bool RemoteShard::ensure_link(std::unique_lock<std::mutex>& lock,
                              std::string* why) {
  if (fd_ >= 0) return true;
  if (reader_.joinable()) {
    if (!reader_done_.load(std::memory_order_acquire)) {
      // The previous reader is still failing its in-flight jobs; do not
      // stack a second link on top of an unsettled one.
      *why = "remote_unreachable";
      return false;
    }
    // Steal joinability under the lock so a racing submit cannot join the
    // same thread object twice.
    std::thread dead = std::move(reader_);
    lock.unlock();
    dead.join();
    lock.lock();
    if (draining_) {
      *why = "draining";
      return false;
    }
    if (fd_ >= 0) return true;  // a racing submit reconnected for us
  }
  std::string error;
  const int fd =
      netio::connect_tcp(config_.target, config_.connect_timeout, &error);
  if (fd < 0) {
    ++stats_.connect_failures;
    breaker_.record_failure(Clock::now());
    *why = "remote_unreachable";
    return false;
  }
  ++stats_.connects;
  fd_ = fd;
  ++generation_;
  reader_done_.store(false, std::memory_order_release);
  reader_ = std::thread([this, fd, generation = generation_] {
    reader_loop(fd, generation);
  });
  return true;
}

std::optional<std::string> RemoteShard::try_submit(serve::JobSpec spec) {
  std::unique_lock lock(mutex_);
  if (draining_) return "draining";
  if (!breaker_.allow(Clock::now())) return "remote_open";
  if (inflight_.size() >= config_.max_inflight) {
    return "remote_inflight_full";
  }
  const std::uint64_t seq = next_seq_++;
  std::string wire_id = "s";
  wire_id += std::to_string(seq);
  wire_id += '!';
  wire_id += spec.id;
  Pending pending;
  pending.id = spec.id;
  pending.origin = spec.origin;
  pending.trace_id = spec.trace_id;

  serve::JobSpec wire = std::move(spec);
  wire.id = wire_id;
  const std::string line = serve::job_request_line(wire) + "\n";

  // Registered before the write: the response can race back before
  // write_all even returns.
  inflight_.emplace(wire_id, std::move(pending));

  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.write_retries;
      const auto sleep = backoff_.next();
      lock.unlock();
      std::this_thread::sleep_for(sleep);
      lock.lock();
      // A dying reader may have flushed our entry as remote_lost while
      // the lock was down — a response was emitted, so the job was taken.
      if (inflight_.find(wire_id) == inflight_.end()) return std::nullopt;
      if (draining_) {
        inflight_.erase(wire_id);
        return "draining";
      }
    }
    std::string why;
    if (!ensure_link(lock, &why)) {
      if (inflight_.find(wire_id) == inflight_.end()) return std::nullopt;
      if (why == "draining") {
        inflight_.erase(wire_id);
        return why;
      }
      continue;  // retry the connect under backoff
    }
    // ensure_link may have dropped the lock to join a dead reader; if that
    // reader flushed our entry, do not write a line nobody is waiting for.
    if (inflight_.find(wire_id) == inflight_.end()) return std::nullopt;
    const netio::IoResult sent = netio::write_all(fd_, line);
    if (sent.ok()) {
      ++stats_.forwarded;
      backoff_.reset();
      return std::nullopt;
    }
    // The line never completed on the wire, so the remote never admitted
    // it: severing and rewriting on a fresh link cannot duplicate the job.
    breaker_.record_failure(Clock::now());
    sever_link_locked();
    if (inflight_.find(wire_id) == inflight_.end()) {
      // The dying reader already failed this entry as remote_lost; its
      // response is on its way out, so the submission counts as taken.
      return std::nullopt;
    }
  }
  // If a dying reader already flushed the entry, its remote_lost response
  // stands and the job counts as taken.
  if (inflight_.erase(wire_id) == 0) return std::nullopt;
  return "remote_unreachable";
}

void RemoteShard::handle_line(std::string_view line) {
  std::string error;
  std::optional<serve::JobResponse> parsed =
      serve::parse_job_response(line, &error);
  serve::JobResponse response;
  bool deliver = false;
  {
    std::lock_guard lock(mutex_);
    if (!parsed.has_value()) {
      ++stats_.malformed;
      return;
    }
    auto it = inflight_.find(parsed->id);
    if (it == inflight_.end()) {
      // The remote's own synthesized lines (admission rejects with empty
      // ids) and responses flushed locally after a drain land here.
      ++stats_.stray;
      return;
    }
    response = std::move(*parsed);
    response.id = it->second.id;
    response.origin = it->second.origin;
    response.shard = config_.slot;
    inflight_.erase(it);
    ++stats_.responses;
    breaker_.record_success(Clock::now());
    deliver = true;
    if (draining_ && inflight_.empty()) drain_cv_.notify_all();
  }
  if (deliver) emit_(response);
}

void RemoteShard::reader_loop(int fd, std::uint64_t generation) {
  LineFramer framer(config_.max_response_line);
  char buffer[65536];
  for (;;) {
    const netio::IoResult result =
        netio::read_some(fd, buffer, sizeof buffer);
    if (result.status != netio::IoStatus::kOk) break;
    framer.feed(std::string_view(buffer, result.bytes));
    while (std::optional<LineFramer::Frame> frame = framer.next()) {
      if (frame->oversized) {
        std::lock_guard lock(mutex_);
        ++stats_.malformed;
        continue;
      }
      handle_line(frame->line);
    }
  }
  std::vector<serve::JobResponse> lost;
  {
    std::lock_guard lock(mutex_);
    netio::close_fd(fd);
    if (generation == generation_) {
      const bool current = fd_ >= 0;
      fd_ = -1;
      if (!draining_ && (current || !inflight_.empty())) {
        breaker_.record_failure(Clock::now());
      }
      for (auto& [wire_id, pending] : inflight_) {
        serve::JobResponse response;
        response.id = pending.id;
        response.outcome = serve::JobOutcome::kFailed;
        response.error = "remote_lost";
        response.trace_id = pending.trace_id;
        response.origin = pending.origin;
        response.shard = config_.slot;
        lost.push_back(std::move(response));
      }
      stats_.remote_lost += inflight_.size();
      inflight_.clear();
      if (draining_) drain_cv_.notify_all();
    }
  }
  for (const serve::JobResponse& response : lost) emit_(response);
  reader_done_.store(true, std::memory_order_release);
}

void RemoteShard::begin_drain() {
  std::lock_guard lock(mutex_);
  draining_ = true;
}

bool RemoteShard::drain(std::chrono::milliseconds budget) {
  std::vector<serve::JobResponse> flushed;
  bool clean = false;
  {
    std::unique_lock lock(mutex_);
    draining_ = true;
    drain_cv_.wait_for(lock, budget, [this] { return inflight_.empty(); });
    clean = inflight_.empty();
    if (!clean) {
      for (auto& [wire_id, pending] : inflight_) {
        serve::JobResponse response;
        response.id = pending.id;
        response.outcome = serve::JobOutcome::kFailed;
        response.error = "shutdown";
        response.trace_id = pending.trace_id;
        response.origin = pending.origin;
        response.shard = config_.slot;
        flushed.push_back(std::move(response));
      }
      stats_.shutdown_flushed += inflight_.size();
      inflight_.clear();
    }
    sever_link_locked();
  }
  for (const serve::JobResponse& response : flushed) emit_(response);
  return clean;
}

RemoteShard::Stats RemoteShard::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t RemoteShard::inflight() const {
  std::lock_guard lock(mutex_);
  return inflight_.size();
}

serve::CircuitBreaker::State RemoteShard::breaker_state() const {
  std::lock_guard lock(mutex_);
  return breaker_.state();
}

std::uint64_t RemoteShard::breaker_opens() const {
  std::lock_guard lock(mutex_);
  return breaker_.opens();
}

std::uint64_t RemoteShard::breaker_closes() const {
  std::lock_guard lock(mutex_);
  return breaker_.closes();
}

}  // namespace popbean::net
