// TcpServer: the NDJSON-over-TCP front end of the job service
// (DESIGN.md §14).
//
// One event-loop thread multiplexes every client connection through a
// Poller (epoll, or poll under force_poll). Each connection carries the
// same strict v2 codec as the stdin front end — a LineFramer reassembles
// frames split at arbitrary byte boundaries, a per-connection
// RequestReader enforces byte-exact offsets and duplicate-id rejection —
// and every admitted spec is stamped with the connection's origin token so
// the terminal response finds its way back to the right socket.
//
// Connection lifecycle (the §14 state machine):
//
//   OPEN ──EOF──▶ HALF_CLOSED ──last response flushed──▶ CLOSED
//     │
//     ├─ oversized/torn frame ──▶ DOOMED (reject written, reads stop,
//     │                           close after flush + in-flight drain)
//     ├─ write stall / buffer overflow ──▶ SHED (failed("slow_client")
//     │                           ledgered, socket closed immediately)
//     └─ idle past idle_timeout with nothing pending ──▶ REAPED
//
// Robustness policies, all bounded and all counted in Stats:
//
//   * admission: a hard connection cap plus an OverloadHysteresis latch on
//     the connection count — rejected sockets get one best-effort
//     `overloaded` line, then close.
//   * backpressure: per-connection write buffers are bounded; past half
//     the cap the server stops reading from that connection (the client
//     feels TCP backpressure), past the cap or past write_deadline with
//     no progress the client is shed as slow.
//   * deadlines: a frame left torn (no terminator) longer than
//     read_deadline is rejected with its byte offset; idle connections
//     are reaped.
//   * exactly-one-response: a connection that dies with jobs in flight
//     keeps a tombstone entry until every response has come back (the
//     ledger hears them; the socket is gone, so they count as dropped).
//
// Threading: the loop thread owns sockets and connection state.
// deliver() may be called from any thread; it appends under the state
// mutex and wakes the loop through a self-pipe. submit/on_local callbacks
// are invoked WITHOUT the state mutex held, so a synchronous rejection
// that re-enters deliver() cannot deadlock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/framer.hpp"
#include "net/poller.hpp"
#include "serve/codec.hpp"
#include "serve/health.hpp"
#include "serve/job.hpp"
#include "util/cli.hpp"

namespace popbean::net {

struct TcpServerConfig {
  HostPort listen;  // port 0 = ephemeral (read back via port())
  int backlog = 128;
  std::size_t max_connections = 256;  // hard admission cap
  // Connection-count hysteresis (serve/health.hpp): admission latches shut
  // at enter × max_connections and reopens at exit × max_connections.
  double admit_enter = 0.90;
  double admit_exit = 0.70;
  std::size_t max_line_bytes = 1 << 20;       // oversized-frame cutoff
  std::size_t max_write_buffer = 4u << 20;    // slow-client cutoff
  std::chrono::milliseconds idle_timeout{30'000};
  std::chrono::milliseconds read_deadline{10'000};   // torn-frame cutoff
  std::chrono::milliseconds write_deadline{10'000};  // write-stall cutoff
  bool force_poll = false;  // exercise the poll(2) fallback
};

class TcpServer {
 public:
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t admission_rejected = 0;  // cap / hysteresis / draining
    std::uint64_t frames = 0;              // complete frames seen
    std::uint64_t invalid_frames = 0;      // strict-codec rejections
    std::uint64_t oversized_frames = 0;
    std::uint64_t torn_frames = 0;         // EOF or deadline mid-frame
    std::uint64_t slow_client_sheds = 0;
    std::uint64_t idle_reaped = 0;
    std::uint64_t half_closed = 0;         // orderly client EOFs
    std::uint64_t responses_delivered = 0;
    std::uint64_t responses_dropped = 0;   // origin socket already gone
    std::uint64_t closed = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
  };

  // Hands an admitted spec (origin already stamped) to the router or
  // service; every submitted spec MUST produce exactly one deliver(),
  // possibly synchronously from inside this call.
  using SubmitFn = std::function<void(serve::JobSpec&&)>;
  // Observes every response the server synthesizes itself — invalid
  // frames, oversized/torn rejections, slow-client sheds — so the front
  // end can ledger and count them. The server writes them to the socket;
  // the callback must not call deliver().
  using ResponseFn = std::function<void(const serve::JobResponse&)>;

  TcpServer(TcpServerConfig config, SubmitFn submit, ResponseFn on_local);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds, listens, and starts the loop thread. False + *error on failure.
  bool start(std::string* error);
  // The bound port (meaningful after start(); resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  // Routes a terminal response to its origin connection. Thread-safe,
  // non-blocking (appends + wakes the loop).
  void deliver(const serve::JobResponse& response);

  // Stops accepting and stops reading; queued responses keep flushing.
  void begin_drain();
  // Waits up to `budget` for every connection to flush its responses and
  // drain its in-flight jobs. True = everything flushed.
  bool drain(std::chrono::milliseconds budget);
  // Joins the loop and closes every socket. Idempotent.
  void stop();

  Stats stats() const;
  std::size_t connection_count() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;  // -1 once closed (tombstone awaiting in-flight drain)
    LineFramer framer;
    serve::RequestReader reader;
    std::string outbuf;
    std::size_t inflight = 0;
    Clock::time_point last_activity;
    std::optional<Clock::time_point> partial_since;        // torn-frame timer
    std::optional<Clock::time_point> write_blocked_since;  // stall timer
    bool read_open = true;      // false after EOF / doom
    bool reading_paused = false;  // soft backpressure
    bool close_after_flush = false;

    explicit Connection(std::size_t max_line) : framer(max_line) {}
  };

  void loop();
  void handle_accept();
  void handle_readable(Connection& conn);
  void flush(Connection& conn);
  void sweep(Clock::time_point now);
  // Synthesizes a server-side response on `conn` (queued to the socket
  // when it is still writable) and stages it for on_local_.
  void synthesize(Connection& conn, serve::JobResponse response);
  void shed_slow(Connection& conn, const char* why);
  void note_torn(Connection& conn);
  // Closes the socket; keeps a tombstone entry while jobs are in flight.
  void close_connection(Connection& conn, bool flushed);
  void reap_tombstones();
  void update_interest(Connection& conn);
  void wake();
  bool all_quiescent_locked() const;

  TcpServerConfig config_;
  SubmitFn submit_;
  ResponseFn on_local_;

  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<Poller> poller_;

  mutable std::mutex mutex_;  // conns_, by_fd_, stats_, flags
  std::condition_variable drain_cv_;
  std::map<std::uint64_t, Connection> conns_;
  std::map<int, std::uint64_t> by_fd_;
  std::uint64_t next_conn_id_ = 1;  // origin 0 = "no front end"
  serve::OverloadHysteresis admit_gauge_;
  Stats stats_;
  bool draining_ = false;
  bool accepting_ = true;
  bool stop_ = false;

  // Staged outside the lock: on_local_ notifications and submissions
  // collected while mutating connection state.
  std::vector<serve::JobResponse> staged_local_;
  std::vector<serve::JobSpec> staged_submits_;

  std::thread thread_;
};

}  // namespace popbean::net
