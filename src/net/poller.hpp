// Poller: readiness multiplexing for the TCP front end (DESIGN.md §14).
//
// One interface over two mechanisms: epoll (level-triggered) where the
// kernel provides it, poll(2) everywhere else. The fallback is not
// decorative — it is the same code path tests exercise via force_poll, so
// a portability bug in the poll branch cannot hide behind epoll on the CI
// machines. Level-triggered on both sides keeps the server loop simple:
// readiness is re-reported until consumed, so a partial read or a short
// write never strands a connection.
//
// Not thread-safe: the event-loop thread owns the poller. Other threads
// wake it by writing to a registered self-pipe, never by touching the
// interest set.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

namespace popbean::net {

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    // Error/hangup on the fd (POLLERR/POLLHUP/EPOLLERR/EPOLLHUP); the
    // owner should read to EOF / fail the connection.
    bool error = false;
  };

  // force_poll skips epoll even when available (tests, portability CI).
  explicit Poller(bool force_poll = false);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  // Registers fd with the given interest; fd must not already be present.
  void add(int fd, bool want_read, bool want_write);
  // Updates interest of a registered fd.
  void modify(int fd, bool want_read, bool want_write);
  // Deregisters fd (safe to call with an fd that was already closed —
  // the kernel drops closed fds from epoll sets on its own).
  void remove(int fd);

  // Blocks up to `timeout` for readiness. Returns the ready events
  // (empty on timeout); EINTR reads as a timeout. A negative timeout
  // blocks indefinitely.
  std::vector<Event> wait(std::chrono::milliseconds timeout);

  bool using_epoll() const noexcept { return epoll_fd_ >= 0; }
  std::size_t watched() const noexcept { return interest_.size(); }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  int epoll_fd_ = -1;  // -1 = poll(2) fallback
  // Source of truth for the interest set; the poll fallback rebuilds its
  // pollfd array from it every wait, epoll uses it to validate add/modify.
  std::map<int, Interest> interest_;
};

}  // namespace popbean::net
