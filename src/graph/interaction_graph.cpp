#include "graph/interaction_graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>
#include <stdexcept>

#include "util/check.hpp"

namespace popbean {

InteractionGraph InteractionGraph::complete(NodeId n) {
  POPBEAN_CHECK(n >= 2);
  InteractionGraph g;
  g.num_nodes_ = n;
  g.complete_ = true;
  g.name_ = "complete(" + std::to_string(n) + ")";
  return g;
}

InteractionGraph InteractionGraph::ring(NodeId n) {
  POPBEAN_CHECK(n >= 3);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n);
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  auto g = from_edges(n, std::move(edges));
  g.name_ = "ring(" + std::to_string(n) + ")";
  return g;
}

InteractionGraph InteractionGraph::star(NodeId n) {
  POPBEAN_CHECK(n >= 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  auto g = from_edges(n, std::move(edges));
  g.name_ = "star(" + std::to_string(n) + ")";
  return g;
}

InteractionGraph InteractionGraph::grid(NodeId rows, NodeId cols, bool wrap) {
  POPBEAN_CHECK(rows >= 1 && cols >= 1);
  const NodeId n = rows * cols;
  POPBEAN_CHECK(n >= 2);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      else if (wrap && cols > 2) edges.emplace_back(id(r, c), id(r, 0));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
      else if (wrap && rows > 2) edges.emplace_back(id(r, c), id(0, c));
    }
  }
  auto g = from_edges(n, std::move(edges));
  g.name_ = "grid(" + std::to_string(rows) + "x" + std::to_string(cols) +
            (wrap ? ",torus)" : ")");
  return g;
}

InteractionGraph InteractionGraph::random_regular(NodeId n, NodeId degree,
                                                  Xoshiro256ss& rng) {
  POPBEAN_CHECK(degree >= 1 && degree < n);
  POPBEAN_CHECK_MSG((static_cast<std::uint64_t>(n) * degree) % 2 == 0,
                    "n * degree must be even");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // Pairing model: each node contributes `degree` stubs; a uniform perfect
    // matching of the stubs induces a multigraph, accepted if simple.
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * degree);
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId k = 0; k < degree; ++k) stubs.push_back(v);
    }
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.below(i)]);
    }
    std::set<std::pair<NodeId, NodeId>> seen;
    bool simple = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && simple; i += 2) {
      NodeId a = stubs[i];
      NodeId b = stubs[i + 1];
      if (a == b) {
        simple = false;
        break;
      }
      if (a > b) std::swap(a, b);
      simple = seen.emplace(a, b).second;
    }
    if (!simple) continue;
    std::vector<std::pair<NodeId, NodeId>> edges(seen.begin(), seen.end());
    auto g = from_edges(n, std::move(edges));
    if (!g.is_connected()) continue;
    g.name_ = "random_regular(" + std::to_string(n) + ",k=" +
              std::to_string(degree) + ")";
    return g;
  }
  throw std::runtime_error("random_regular: failed to sample a simple "
                           "connected graph after 1000 attempts");
}

InteractionGraph InteractionGraph::erdos_renyi(NodeId n, double p,
                                               Xoshiro256ss& rng,
                                               bool require_connected) {
  POPBEAN_CHECK(n >= 2);
  POPBEAN_CHECK(p > 0.0 && p <= 1.0);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(p)) edges.emplace_back(u, v);
      }
    }
    if (edges.empty()) continue;
    auto g = from_edges(n, std::move(edges));
    if (require_connected && !g.is_connected()) continue;
    g.name_ = "erdos_renyi(" + std::to_string(n) + ",p=" + std::to_string(p) +
              ")";
    return g;
  }
  throw std::runtime_error(
      "erdos_renyi: failed to sample a connected graph after 1000 attempts; "
      "increase p");
}

InteractionGraph InteractionGraph::from_edges(
    NodeId n, std::vector<std::pair<NodeId, NodeId>> edges) {
  POPBEAN_CHECK(n >= 2);
  for (auto& [u, v] : edges) {
    POPBEAN_CHECK_MSG(u != v, "self-loops are not allowed");
    POPBEAN_CHECK(u < n && v < n);
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  POPBEAN_CHECK_MSG(!edges.empty(), "graph must have at least one edge");
  InteractionGraph g;
  g.num_nodes_ = n;
  g.edges_ = std::move(edges);
  g.name_ = "custom(" + std::to_string(n) + ")";
  return g;
}

std::uint64_t InteractionGraph::num_edges() const noexcept {
  if (complete_) {
    return static_cast<std::uint64_t>(num_nodes_) * (num_nodes_ - 1) / 2;
  }
  return edges_.size();
}

std::pair<NodeId, NodeId> InteractionGraph::sample_directed_edge(
    Xoshiro256ss& rng) const {
  if (complete_) {
    const auto u = static_cast<NodeId>(rng.below(num_nodes_));
    auto v = static_cast<NodeId>(rng.below(num_nodes_ - 1));
    if (v >= u) ++v;  // uniform over nodes distinct from u
    return {u, v};
  }
  const auto& edge = edges_[rng.below(edges_.size())];
  if (rng.bernoulli(0.5)) return {edge.first, edge.second};
  return {edge.second, edge.first};
}

bool InteractionGraph::is_connected() const {
  if (complete_) return true;
  std::vector<std::vector<NodeId>> adjacency(num_nodes_);
  for (const auto& [u, v] : edges_) {
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  }
  std::vector<bool> visited(num_nodes_, false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  visited[0] = true;
  NodeId reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency[u]) {
      if (!visited[v]) {
        visited[v] = true;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == num_nodes_;
}

NodeId InteractionGraph::degree(NodeId v) const {
  POPBEAN_CHECK(v < num_nodes_);
  if (complete_) return num_nodes_ - 1;
  NodeId d = 0;
  for (const auto& [a, b] : edges_) {
    if (a == v || b == v) ++d;
  }
  return d;
}

}  // namespace popbean
