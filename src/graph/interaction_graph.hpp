// Interaction graphs for population protocols.
//
// The paper's model (§2) draws, at every discrete step, a uniformly random
// directed edge of an interaction graph G without self-loops; the complete
// graph is the case analysed in depth, but the four-state baseline was
// originally studied on arbitrary connected graphs [DV12]. We store an
// undirected edge list and orient edges uniformly at sampling time, which is
// equivalent to the directed model when both orientations are allowed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace popbean {

using NodeId = std::uint32_t;

class InteractionGraph {
 public:
  // Named constructors -----------------------------------------------------

  // Clique on n >= 2 nodes. Edges are implicit; no O(n^2) storage.
  static InteractionGraph complete(NodeId n);

  // Cycle v0 - v1 - ... - v_{n-1} - v0 (n >= 3).
  static InteractionGraph ring(NodeId n);

  // Star with node 0 as the hub (n >= 2).
  static InteractionGraph star(NodeId n);

  // 2D grid (torus if wrap) with rows*cols nodes.
  static InteractionGraph grid(NodeId rows, NodeId cols, bool wrap = false);

  // Random k-regular graph via the pairing model, resampled until simple.
  // Requires n*k even, k < n.
  static InteractionGraph random_regular(NodeId n, NodeId degree,
                                         Xoshiro256ss& rng);

  // Erdős–Rényi G(n, p); if require_connected, resamples until connected
  // (throws after 1000 attempts — choose p above the connectivity
  // threshold log(n)/n).
  static InteractionGraph erdos_renyi(NodeId n, double p, Xoshiro256ss& rng,
                                      bool require_connected = true);

  // From an explicit undirected edge list (self-loops rejected, duplicates
  // collapsed).
  static InteractionGraph from_edges(NodeId n,
                                     std::vector<std::pair<NodeId, NodeId>> edges);

  // Queries -----------------------------------------------------------------

  NodeId num_nodes() const noexcept { return num_nodes_; }
  std::uint64_t num_edges() const noexcept;
  bool is_complete() const noexcept { return complete_; }
  const std::string& name() const noexcept { return name_; }

  // Samples a uniformly random ordered pair (initiator, responder) of
  // adjacent distinct nodes.
  std::pair<NodeId, NodeId> sample_directed_edge(Xoshiro256ss& rng) const;

  // Connectivity via BFS; the majority problem is only well-posed on
  // connected graphs.
  bool is_connected() const;

  NodeId degree(NodeId v) const;

  // The explicit undirected edge list (canonicalized u < v). Empty for the
  // complete graph, whose edges are implicit.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const noexcept {
    return edges_;
  }

 private:
  InteractionGraph() = default;

  NodeId num_nodes_ = 0;
  bool complete_ = false;
  std::string name_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // empty when complete_
};

}  // namespace popbean
