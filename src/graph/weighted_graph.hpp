// Interaction graphs with per-edge rates.
//
// [DV12] analyses the four-state protocol under arbitrary pairwise
// interaction *rates* q_{uv} (a rate matrix whose spectral gap δ(G, ε)
// governs convergence). The discrete analogue: each step selects edge
// {u, v} with probability proportional to its weight, then orients it
// uniformly. WeightedInteractionGraph implements that with an alias table —
// O(1) per sample regardless of the edge count.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/interaction_graph.hpp"
#include "util/alias.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace popbean {

class WeightedInteractionGraph {
 public:
  struct WeightedEdge {
    NodeId u;
    NodeId v;
    double weight;
  };

  WeightedInteractionGraph(NodeId n, std::vector<WeightedEdge> edges,
                           std::string name = "weighted")
      : num_nodes_(n), edges_(std::move(edges)), name_(std::move(name)),
        table_(make_table(num_nodes_, edges_)) {}

  // Two equal cliques joined by a single bridge edge whose rate is
  // `bridge_weight` times the intra-community rate — the classic
  // slow-mixing example for rate-dependent bounds. n must be even.
  static WeightedInteractionGraph two_communities(NodeId n,
                                                  double bridge_weight);

  // Uniform rates over an unweighted graph's edges (sanity baseline:
  // equivalent to the unweighted graph).
  static WeightedInteractionGraph uniform(const InteractionGraph& graph);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  const std::string& name() const noexcept { return name_; }

  // Samples a directed pair: edge ∝ weight, orientation uniform.
  std::pair<NodeId, NodeId> sample_directed_edge(Xoshiro256ss& rng) const {
    const WeightedEdge& edge = edges_[table_.sample(rng)];
    if (rng.bernoulli(0.5)) return {edge.u, edge.v};
    return {edge.v, edge.u};
  }

  bool is_connected() const {
    std::vector<std::pair<NodeId, NodeId>> plain;
    plain.reserve(edges_.size());
    for (const auto& e : edges_) plain.emplace_back(e.u, e.v);
    return InteractionGraph::from_edges(num_nodes_, std::move(plain))
        .is_connected();
  }

 private:
  static AliasTable make_table(NodeId n,
                               const std::vector<WeightedEdge>& edges) {
    POPBEAN_CHECK(n >= 2);
    POPBEAN_CHECK(!edges.empty());
    std::vector<double> weights;
    weights.reserve(edges.size());
    for (const auto& e : edges) {
      POPBEAN_CHECK(e.u < n && e.v < n && e.u != e.v);
      POPBEAN_CHECK(e.weight > 0.0);
      weights.push_back(e.weight);
    }
    return AliasTable(weights);
  }

  NodeId num_nodes_;
  std::vector<WeightedEdge> edges_;
  std::string name_;
  AliasTable table_;
};

}  // namespace popbean
