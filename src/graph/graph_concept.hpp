// Concept satisfied by interaction-graph types the agent engine can drive:
// the uniform-edge InteractionGraph and the rate-weighted
// WeightedInteractionGraph both qualify.
#pragma once

#include <concepts>
#include <utility>

#include "graph/interaction_graph.hpp"
#include "util/rng.hpp"

namespace popbean {

template <typename G>
concept GraphLike = requires(const G& graph, Xoshiro256ss& rng) {
  { graph.num_nodes() } -> std::convertible_to<NodeId>;
  {
    graph.sample_directed_edge(rng)
  } -> std::same_as<std::pair<NodeId, NodeId>>;
  { graph.is_connected() } -> std::convertible_to<bool>;
};

static_assert(GraphLike<InteractionGraph>);

}  // namespace popbean
