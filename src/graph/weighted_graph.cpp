#include "graph/weighted_graph.hpp"

namespace popbean {

WeightedInteractionGraph WeightedInteractionGraph::two_communities(
    NodeId n, double bridge_weight) {
  POPBEAN_CHECK(n >= 4 && n % 2 == 0);
  POPBEAN_CHECK(bridge_weight > 0.0);
  const NodeId half = n / 2;
  std::vector<WeightedEdge> edges;
  for (NodeId u = 0; u < n; ++u) {
    const bool left = u < half;
    const NodeId low = left ? 0 : half;
    const NodeId high = left ? half : n;
    for (NodeId v = u + 1; v < high; ++v) {
      if (v < low) continue;
      edges.push_back({u, v, 1.0});
    }
  }
  // Single bridge between the last left node and the first right node.
  edges.push_back({half - 1, half, bridge_weight});
  return WeightedInteractionGraph(
      n, std::move(edges),
      "two_communities(" + std::to_string(n) + ",bridge=" +
          std::to_string(bridge_weight) + ")");
}

WeightedInteractionGraph WeightedInteractionGraph::uniform(
    const InteractionGraph& graph) {
  POPBEAN_CHECK_MSG(!graph.is_complete(),
                    "materializing a complete graph's edges is wasteful; use "
                    "InteractionGraph::complete with AgentEngine directly");
  std::vector<WeightedEdge> edges;
  edges.reserve(graph.edges().size());
  for (const auto& [u, v] : graph.edges()) {
    edges.push_back({u, v, 1.0});
  }
  return WeightedInteractionGraph(graph.num_nodes(), std::move(edges),
                                  "uniform(" + graph.name() + ")");
}

}  // namespace popbean
