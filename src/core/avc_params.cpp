#include "core/avc_params.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace popbean::avc {

int largest_odd_at_most(std::int64_t x) {
  POPBEAN_CHECK_MSG(x >= 1, "no odd integer >= 1 available");
  const std::int64_t odd = x % 2 == 0 ? x - 1 : x;
  POPBEAN_CHECK(odd <= 2147483647);
  return static_cast<int>(odd);
}

AvcParams from_state_budget(std::int64_t s, int d) {
  POPBEAN_CHECK(d >= 1);
  POPBEAN_CHECK_MSG(s >= 2 * d + 2, "state budget too small for m >= 1");
  return {largest_odd_at_most(s - 2 * d - 1), d};
}

AvcParams n_state(std::uint64_t n) {
  POPBEAN_CHECK(n >= 4);
  return from_state_budget(static_cast<std::int64_t>(n), /*d=*/1);
}

AvcParams for_epsilon(double epsilon, int d) {
  POPBEAN_CHECK(epsilon > 0.0 && epsilon <= 1.0);
  POPBEAN_CHECK(d >= 1);
  const auto budget = static_cast<std::int64_t>(std::ceil(1.0 / epsilon));
  // Never go below the minimal legal protocol (m = 1).
  return from_state_budget(std::max<std::int64_t>(budget, 2 * d + 2), d);
}

AvcParams theorem_setting(std::uint64_t n) {
  POPBEAN_CHECK(n >= 4);
  const double log_n = std::log(static_cast<double>(n));
  const double log_log_n = std::log(std::max(std::exp(1.0), log_n));
  const auto m_target =
      static_cast<std::int64_t>(std::ceil(log_n * log_log_n));
  const int m = largest_odd_at_most(
      std::max<std::int64_t>(m_target | 1, 1));
  const double log_m = std::log(std::max(2.0, static_cast<double>(m)));
  const auto d = static_cast<int>(std::ceil(1000.0 * log_m * log_n));
  return {m, std::max(1, d)};
}

}  // namespace popbean::avc
