// State space of the Average-and-Conquer (AVC) protocol (paper §3, Fig. 1).
//
// Every state carries a sign (+/−) and a weight, and represents the integer
// value sign · weight:
//
//   strong states        weight w ∈ {3, 5, …, m} (odd), values ±3 … ±m
//   intermediate states  weight 1 at a level j ∈ {1 … d}: ±1₁ … ±1_d
//   weak states          weight 0: +0 and −0
//
// Total: s = m + 2d + 1 states. This header provides the bijection between
// semantic states and the dense ids the engines operate on, laid out in
// ascending value order:
//
//   id:    0 … (m−3)/2 | … | (m−1)/2+j−1 | +d → −0, +0 | … | top
//   state: −m … −3     |    −1₁ … −1_d   |   −0    +0  | +1_d … +1₁? (see below)
//
// Positive intermediates mirror the negative ones: +1_j sits at
// weak_plus + j, i.e. ids ascend +1_1 … +1_d … no — they ascend by *level*
// after +0 (see index arithmetic); the exact layout is an implementation
// detail hidden behind the encode/decode functions and covered by
// round-trip tests.
#pragma once

#include <cstdint>
#include <string>

#include "population/protocol.hpp"
#include "util/check.hpp"

namespace popbean::avc {

enum class Kind : std::uint8_t { kStrong, kIntermediate, kWeak };

// Decoded (semantic) AVC state.
struct DecodedState {
  Kind kind = Kind::kWeak;
  int sign = +1;   // +1 or −1; the tentative output
  int weight = 0;  // m ≥ weight ≥ 3 odd (strong), 1 (intermediate), 0 (weak)
  int level = 0;   // 1 … d for intermediates, 0 otherwise

  int value() const noexcept { return sign * weight; }

  friend bool operator==(const DecodedState&, const DecodedState&) = default;
};

// Codec for one (m, d) parameterization. m must be odd and ≥ 1; d ≥ 1.
class StateCodec {
 public:
  StateCodec(int m, int d) : m_(m), d_(d) {
    POPBEAN_CHECK_MSG(m >= 1 && m % 2 == 1, "m must be an odd integer >= 1");
    POPBEAN_CHECK_MSG(d >= 1, "d must be >= 1");
    strong_per_sign_ = (m - 1) / 2;  // weights 3, 5, …, m
  }

  int m() const noexcept { return m_; }
  int d() const noexcept { return d_; }

  // s = m + 2d + 1 (paper §3, "State Parameters").
  std::size_t num_states() const noexcept {
    return static_cast<std::size_t>(m_) + 2 * static_cast<std::size_t>(d_) + 1;
  }

  // --- id layout ------------------------------------------------------------
  // [0, S)                      strong negatives: id k ↦ value −m + 2k
  // [S, S+d)                    −1_j: id S + (j−1)
  // S+d, S+d+1                  −0, +0
  // [S+d+2, S+2d+2)             +1_j: id S + d + 2 + (j−1)
  // [S+2d+2, S+2d+2+S)          strong positives: id base + k ↦ value 3 + 2k
  // where S = strong_per_sign_ = (m−1)/2.

  State weak(int sign) const noexcept {
    return static_cast<State>(strong_per_sign_ + d_ + (sign > 0 ? 1 : 0));
  }

  State intermediate(int sign, int level) const {
    POPBEAN_CHECK(level >= 1 && level <= d_);
    const int base = sign > 0 ? strong_per_sign_ + d_ + 2 : strong_per_sign_;
    return static_cast<State>(base + (level - 1));
  }

  // Encodes an odd value v with |v| ∈ {1, 3, …, m}. Values ±1 map to the
  // level-1 intermediate (the ϕ rounding function of Fig. 1).
  State from_value(int v) const {
    POPBEAN_CHECK_MSG(v != 0 && v % 2 != 0, "value must be odd");
    POPBEAN_CHECK_MSG(v >= -m_ && v <= m_, "value out of range");
    if (v == 1 || v == -1) return intermediate(v, 1);
    if (v < 0) return static_cast<State>((v + m_) / 2);
    return static_cast<State>(strong_per_sign_ + 2 * d_ + 2 + (v - 3) / 2);
  }

  DecodedState decode(State q) const {
    POPBEAN_CHECK(q < num_states());
    const int id = static_cast<int>(q);
    if (id < strong_per_sign_) {
      return {Kind::kStrong, -1, m_ - 2 * id, 0};
    }
    if (id < strong_per_sign_ + d_) {
      return {Kind::kIntermediate, -1, 1, id - strong_per_sign_ + 1};
    }
    if (id == strong_per_sign_ + d_) return {Kind::kWeak, -1, 0, 0};
    if (id == strong_per_sign_ + d_ + 1) return {Kind::kWeak, +1, 0, 0};
    if (id < strong_per_sign_ + 2 * d_ + 2) {
      return {Kind::kIntermediate, +1, 1, id - (strong_per_sign_ + d_ + 2) + 1};
    }
    return {Kind::kStrong, +1,
            3 + 2 * (id - (strong_per_sign_ + 2 * d_ + 2)), 0};
  }

  // Fast accessors (used in the interaction hot path; avoid full decode).
  int sign_of(State q) const noexcept {
    return static_cast<int>(q) <= strong_per_sign_ + d_ ? -1 : +1;
  }

  int weight_of(State q) const noexcept {
    const int id = static_cast<int>(q);
    if (id < strong_per_sign_) return m_ - 2 * id;                // strong −
    if (id < strong_per_sign_ + d_) return 1;                     // −1_j
    if (id <= strong_per_sign_ + d_ + 1) return 0;                // ±0
    if (id < strong_per_sign_ + 2 * d_ + 2) return 1;             // +1_j
    return 3 + 2 * (id - (strong_per_sign_ + 2 * d_ + 2));        // strong +
  }

  int value_of(State q) const noexcept {
    return sign_of(q) * weight_of(q);
  }

  bool is_intermediate(State q) const noexcept {
    const int id = static_cast<int>(q);
    return (id >= strong_per_sign_ && id < strong_per_sign_ + d_) ||
           (id >= strong_per_sign_ + d_ + 2 &&
            id < strong_per_sign_ + 2 * d_ + 2);
  }

  int level_of(State q) const noexcept {
    const int id = static_cast<int>(q);
    if (id >= strong_per_sign_ && id < strong_per_sign_ + d_) {
      return id - strong_per_sign_ + 1;
    }
    if (id >= strong_per_sign_ + d_ + 2 &&
        id < strong_per_sign_ + 2 * d_ + 2) {
      return id - (strong_per_sign_ + d_ + 2) + 1;
    }
    return 0;
  }

  std::string name(State q) const {
    const DecodedState s = decode(q);
    switch (s.kind) {
      case Kind::kWeak:
        return s.sign > 0 ? "+0" : "-0";
      case Kind::kIntermediate:
        return (s.sign > 0 ? std::string("+1_") : std::string("-1_")) +
               std::to_string(s.level);
      case Kind::kStrong: {
        std::string text = std::to_string(s.value());
        if (s.sign > 0) text.insert(text.begin(), '+');
        return text;
      }
    }
    POPBEAN_CHECK_MSG(false, "unreachable");
    return {};
  }

 private:
  int m_;
  int d_;
  int strong_per_sign_;
};

}  // namespace popbean::avc
