// Parameter-selection helpers for AVC (paper §4).
#pragma once

#include <cstdint>

namespace popbean::avc {

struct AvcParams {
  int m = 1;  // odd, >= 1
  int d = 1;  // >= 1

  // Number of protocol states s = m + 2d + 1.
  int num_states() const noexcept { return m + 2 * d + 1; }
};

// Largest odd integer <= x (>= 1).
int largest_odd_at_most(std::int64_t x);

// Picks m for a target state budget s with the given number of intermediate
// levels: the largest odd m with m + 2d + 1 <= s. Requires s >= 2d + 2.
// The paper's experiments use d = 1, so e.g. s = 4 -> m = 1 (the four-state
// protocol) and s = 6 -> m = 3.
AvcParams from_state_budget(std::int64_t s, int d = 1);

// The "n-state AVC" of Figure 3: state budget ~= n, d = 1.
AvcParams n_state(std::uint64_t n);

// Corollary 4.2 setting: s ~= 1/epsilon (d = 1 in the experimental variant),
// so the convergence time is O(log 1/eps * log n) in expectation.
AvcParams for_epsilon(double epsilon, int d = 1);

// The parameterization used by the Theorem 4.1 analysis:
// m in [log n log log n, n] and d = 1000 log m log n (natural logs rounded
// up; m rounded to odd). This yields a large-but-valid protocol mainly of
// theoretical interest; experiments use d = 1.
AvcParams theorem_setting(std::uint64_t n);

}  // namespace popbean::avc
