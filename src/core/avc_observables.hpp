// Observables over AVC configurations matching the quantities tracked by
// the paper's analysis (§4).
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/avc.hpp"
#include "population/trace.hpp"

namespace popbean::avc {

// Largest weight among nodes with positive (sign > 0) values — the quantity
// Claim A.2 shows halves every O(log n) negative-rounds. Zero if none.
inline Observable max_positive_weight(const AvcProtocol& protocol) {
  return {"max_pos_weight", [&protocol](const Counts& counts) {
            int best = 0;
            for (State q = 0; q < counts.size(); ++q) {
              if (counts[q] > 0 && protocol.value_of(q) > 0) {
                best = std::max(best, protocol.value_of(q));
              }
            }
            return static_cast<double>(best);
          }};
}

// Largest weight among nodes with strictly negative values.
inline Observable max_negative_weight(const AvcProtocol& protocol) {
  return {"max_neg_weight", [&protocol](const Counts& counts) {
            int best = 0;
            for (State q = 0; q < counts.size(); ++q) {
              if (counts[q] > 0 && protocol.value_of(q) < 0) {
                best = std::max(best, -protocol.value_of(q));
              }
            }
            return static_cast<double>(best);
          }};
}

// Number of weak (weight-0) nodes — Claim A.3 shows none appear during the
// first Θ(n log m log n) interactions, w.h.p.
inline Observable weak_nodes(const AvcProtocol& protocol) {
  return {"weak_nodes", [&protocol](const Counts& counts) {
            std::uint64_t total = 0;
            const auto& codec = protocol.codec();
            total += counts[codec.weak(+1)];
            total += counts[codec.weak(-1)];
            return static_cast<double>(total);
          }};
}

// Number of nodes whose value is strictly positive / strictly negative —
// the "positive-round / negative-round" classification of §4 watches these
// against n/3.
inline Observable strictly_positive_nodes(const AvcProtocol& protocol) {
  return {"positive_nodes", [&protocol](const Counts& counts) {
            std::uint64_t total = 0;
            for (State q = 0; q < counts.size(); ++q) {
              if (protocol.value_of(q) > 0) total += counts[q];
            }
            return static_cast<double>(total);
          }};
}

inline Observable strictly_negative_nodes(const AvcProtocol& protocol) {
  return {"negative_nodes", [&protocol](const Counts& counts) {
            std::uint64_t total = 0;
            for (State q = 0; q < counts.size(); ++q) {
              if (protocol.value_of(q) < 0) total += counts[q];
            }
            return static_cast<double>(total);
          }};
}

// The conserved sum Σ value (Invariant 4.3) — constant along any valid run.
inline Observable total_value(const AvcProtocol& protocol) {
  return {"total_value", [&protocol](const Counts& counts) {
            return static_cast<double>(protocol.total_value(counts));
          }};
}

}  // namespace popbean::avc
