// The Average-and-Conquer (AVC) protocol — the paper's primary contribution
// (§3, Figure 1). Solves *exact* majority with s = m + 2d + 1 states in
// expected parallel time O(log n/(sε) + log n log s) (Theorem 4.1).
//
// Dynamics, by the three reaction families of Fig. 1:
//
//  * Averaging (line 11): whenever two non-zero values meet and at least one
//    is strong (weight > 1), they take the two odd values bracketing their
//    average: h = (value(x) + value(y)) / 2 (an integer — both values are
//    odd), results R↓(h), R↑(h). Results of ±1 enter the level-1
//    intermediate state. The total value Σ value is preserved exactly
//    (Invariant 4.3); this is what makes the protocol exact.
//
//  * Zero meets non-zero (lines 12–14): the weak node adopts the partner's
//    sign (Sign-to-Zero); an intermediate partner is pushed one level toward
//    d (Shift-to-Zero); a strong partner is unchanged.
//    NOTE: the TR's pseudocode prints the guard as `value(x)+value(y) > 0`;
//    the prose and the correctness proofs (Lemma A.1, Claim 4.5) require
//    `≠ 0` — with `> 0` weak nodes could never adopt a negative majority.
//    We implement `≠ 0`. Since exactly one participant has weight 0 here,
//    the sum is the non-zero participant's value, so the guard only excludes
//    the zero-meets-zero null reaction.
//
//  * Intermediate neutralization (lines 15–17): two weight-1 nodes of
//    opposite sign, at least one at the last level d, cancel into −0 and +0.
//    Any other pair of weight-≤1 nodes just drifts one level toward d
//    (line 19, Shift-to-Zero on both).
//
// With m = 1, d = 1 this is state-for-state the four-state protocol of
// [DV12, MNRS14] (see tests/core/avc_four_state_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "core/avc_state.hpp"
#include "obs/probe.hpp"
#include "population/configuration.hpp"
#include "population/protocol.hpp"

namespace popbean::avc {

class AvcProtocol {
 public:
  // m: odd integer ≥ 1, the initial weight of inputs (±m).
  // d: number of intermediate levels ≥ 1; the paper's analysis uses
  //    d = Θ(log m log n) while its experiments use d = 1.
  AvcProtocol(int m, int d);

  int m() const noexcept { return codec_.m(); }
  int d() const noexcept { return codec_.d(); }
  const StateCodec& codec() const noexcept { return codec_; }

  std::size_t num_states() const noexcept { return codec_.num_states(); }

  // A ↦ +m, B ↦ −m (for m = 1 these are the level-1 intermediates ±1₁).
  State initial_state(Opinion opinion) const noexcept;

  // γ: sign(+) ↦ 1 (majority A), sign(−) ↦ 0 (majority B).
  Output output(State q) const noexcept { return codec_.sign_of(q) > 0 ? 1 : 0; }

  Transition apply(State x, State y) const noexcept;

  // Names the Fig. 1 reaction family apply(x, y) falls into, for the
  // observability layer's per-kind interaction counters (obs/probe.hpp).
  // Callers classify *productive* pairs; a pair whose transition is null
  // (zero–zero, or drift at the deepest level) maps to kNull here too, so
  // the partition stays consistent either way.
  obs::ReactionKind classify(State x, State y) const noexcept;

  std::string state_name(State q) const { return codec_.name(q); }

  // Value encoded by a state (sign · weight); exposed for invariant checks.
  int value_of(State q) const noexcept { return codec_.value_of(q); }

  // Σ over agents of value(state) — the conserved quantity of
  // Invariant 4.3. For the canonical input with a agents at +m and b at −m
  // this equals (a − b)·m.
  std::int64_t total_value(const Counts& counts) const;

 private:
  State shift_to_zero(State q) const noexcept;

  StateCodec codec_;
};

static_assert(ProtocolLike<AvcProtocol>);

}  // namespace popbean::avc
