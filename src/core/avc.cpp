#include "core/avc.hpp"

#include "util/check.hpp"

namespace popbean::avc {

AvcProtocol::AvcProtocol(int m, int d) : codec_(m, d) {}

State AvcProtocol::initial_state(Opinion opinion) const noexcept {
  return codec_.from_value(opinion == Opinion::A ? codec_.m() : -codec_.m());
}

State AvcProtocol::shift_to_zero(State q) const noexcept {
  // ±1_j ↦ ±1_{j+1} for j < d; every other state is unchanged (Fig. 1).
  if (!codec_.is_intermediate(q)) return q;
  const int level = codec_.level_of(q);
  if (level >= codec_.d()) return q;
  return codec_.intermediate(codec_.sign_of(q), level + 1);
}

Transition AvcProtocol::apply(State x, State y) const noexcept {
  const int wx = codec_.weight_of(x);
  const int wy = codec_.weight_of(y);

  // Averaging reaction (Fig. 1 line 11): both non-zero, at least one strong.
  if (wx > 0 && wy > 0 && (wx > 1 || wy > 1)) {
    const int sum = codec_.value_of(x) + codec_.value_of(y);
    POPBEAN_DCHECK(sum % 2 == 0);  // both values odd
    const int half = sum / 2;
    const bool half_odd = half % 2 != 0;
    const int lo = half_odd ? half : half - 1;  // R↓
    const int hi = half_odd ? half : half + 1;  // R↑
    return {codec_.from_value(lo), codec_.from_value(hi)};
  }

  // Zero meets non-zero (lines 12–14); guard corrected to `sum ≠ 0`
  // (see header). Zero meets zero falls through to the final case, a no-op.
  if ((wx == 0) != (wy == 0)) {
    if (wx != 0) {
      return {shift_to_zero(x), codec_.weak(codec_.sign_of(x))};
    }
    return {codec_.weak(codec_.sign_of(y)), shift_to_zero(y)};
  }

  // Intermediate neutralization (lines 15–17): opposite-sign weight-1 pair
  // with at least one participant at the deepest level d.
  if (wx == 1 && wy == 1 && codec_.sign_of(x) != codec_.sign_of(y) &&
      (codec_.level_of(x) == codec_.d() || codec_.level_of(y) == codec_.d())) {
    return {codec_.weak(-1), codec_.weak(+1)};
  }

  // Remaining pairs (lines 18–19): weight-1 pairs not covered above drift
  // one level toward d; zero–zero pairs are unchanged.
  return {shift_to_zero(x), shift_to_zero(y)};
}

obs::ReactionKind AvcProtocol::classify(State x, State y) const noexcept {
  // Nullness first: every family's guard admits fixed points (a pair equal
  // to its own average, an already-drifted sign adoption, a zero–zero
  // pair), and those are null interactions, not family members.
  if (is_null(apply(x, y), x, y)) return obs::ReactionKind::kNull;

  const int wx = codec_.weight_of(x);
  const int wy = codec_.weight_of(y);

  // Mirrors apply()'s guards branch for branch.
  if (wx > 0 && wy > 0 && (wx > 1 || wy > 1)) {
    return obs::ReactionKind::kAveraging;
  }
  if ((wx == 0) != (wy == 0)) {
    // Lines 12–14: the weak node adopts the partner's sign (the partner may
    // additionally drift, but the family is named by the weak node's move).
    return obs::ReactionKind::kSignToZero;
  }
  if (wx == 1 && wy == 1 && codec_.sign_of(x) != codec_.sign_of(y) &&
      (codec_.level_of(x) == codec_.d() || codec_.level_of(y) == codec_.d())) {
    return obs::ReactionKind::kNeutralization;
  }
  // Remaining productive pairs are the line 18–19 drifts.
  return obs::ReactionKind::kShiftToZero;
}

std::int64_t AvcProtocol::total_value(const Counts& counts) const {
  POPBEAN_CHECK(counts.size() == num_states());
  std::int64_t total = 0;
  for (State q = 0; q < counts.size(); ++q) {
    total += static_cast<std::int64_t>(value_of(q)) *
             static_cast<std::int64_t>(counts[q]);
  }
  return total;
}

}  // namespace popbean::avc
